//! Fault-tolerant measurement: retries, read-back medians, and the
//! §III.C escape hatch.
//!
//! The paper's configurable RO PUF has a built-in robustness story:
//! because every pair can be *excluded* ("we don't have to use the PUF
//! bit generated from this pair", §III.C), a measurement that cannot be
//! trusted never has to poison enrollment — the pair is simply dropped.
//! This module turns that observation into a measurement pipeline that
//! survives the fault taxa of [`ropuf_silicon::faults`]:
//!
//! 1. **Plausibility band** — a read outside
//!    [`RobustOptions::plausible_ps`] (stuck-at-rail, saturated, or
//!    dropped) is rejected outright.
//! 2. **Read-back verification** — every in-band read is confirmed by
//!    one independent re-read; agreement within a noise-scaled
//!    tolerance accepts the *primary* value verbatim (never an
//!    average, so a clean read is bit-identical to the plain path).
//! 3. **Median-of-k escalation** — on disagreement, up to
//!    [`RobustOptions::retry_budget`] extra reads are taken; with at
//!    least [`MIN_RECOVERY_READS`] in-band samples the value is the
//!    median after MAD outlier rejection, otherwise the read has
//!    *failed* and the surrounding pair is excluded (enrollment) or
//!    the bit erased (response).
//!
//! Determinism: the primary reads draw from the same measurement RNG,
//! in the same order, as the plain pipeline; fault rolls and
//! verification/retry reads draw from two *separate* split-seeded
//! streams. With a zero-rate [`ropuf_silicon::FaultModel`] the
//! verification machinery is skipped entirely, so a zero-fault run is
//! byte-identical to a run without the fault layer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ropuf_silicon::faults::FaultModel;
use ropuf_silicon::{Board, DelayProbe, Environment, MeasureArena, RingSweep, Technology};
use ropuf_telemetry as telemetry;

use crate::calibrate::Calibration;
use crate::fleet::split_seed;
use crate::puf::{
    corner_stream, BoundEnrollment, ConfigurableRoPuf, EnrollOptions, EnrolledPair, Enrollment,
    PairSpec,
};

/// Sub-stream index for per-pair / per-corner fault rolls.
const STREAM_FAULT: u64 = u64::MAX - 2;
/// Sub-stream index for verification and retry reads.
const STREAM_RETRY: u64 = u64::MAX - 3;

/// Minimum in-band samples needed before a disputed read can be
/// recovered by MAD-filtered median; below this the read fails.
pub const MIN_RECOVERY_READS: usize = 3;

/// Tuning knobs for the fault-tolerant measurement pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustOptions {
    /// Maximum extra reads spent recovering one disputed measurement.
    pub retry_budget: usize,
    /// Target number of in-band samples for the recovery median.
    pub readback_k: usize,
    /// MAD multiple beyond which a sample is discarded as an outlier.
    pub mad_k: f64,
    /// Agreement tolerance between primary and verification read, in
    /// multiples of the probe's effective noise sigma (×√2 for the
    /// difference of two reads).
    pub agree_sigmas: f64,
    /// Absolute floor on the agreement tolerance, picoseconds — keeps
    /// verification meaningful with a noiseless probe.
    pub agree_floor_ps: f64,
    /// Closed plausibility band for a single ring-delay read,
    /// picoseconds; anything outside is treated as a counter fault.
    pub plausible_ps: (f64, f64),
    /// A board whose unreadable-pair fraction exceeds this is
    /// quarantined instead of enrolled.
    pub max_failed_pair_fraction: f64,
}

impl Default for RobustOptions {
    fn default() -> Self {
        Self {
            retry_budget: 8,
            readback_k: 5,
            mad_k: 5.0,
            agree_sigmas: 8.0,
            agree_floor_ps: 0.5,
            plausible_ps: (1.0, 1.0e6),
            max_failed_pair_fraction: 0.5,
        }
    }
}

impl RobustOptions {
    /// Checks budgets, tolerances, and the plausibility band.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.retry_budget == 0 {
            return Err("retry_budget must be at least 1".to_string());
        }
        if self.readback_k < MIN_RECOVERY_READS {
            return Err(format!(
                "readback_k must be at least {MIN_RECOVERY_READS}, got {}",
                self.readback_k
            ));
        }
        if !self.mad_k.is_finite() || self.mad_k <= 0.0 {
            return Err(format!("mad_k must be finite and > 0, got {}", self.mad_k));
        }
        if !self.agree_sigmas.is_finite() || self.agree_sigmas <= 0.0 {
            return Err(format!(
                "agree_sigmas must be finite and > 0, got {}",
                self.agree_sigmas
            ));
        }
        if !self.agree_floor_ps.is_finite() || self.agree_floor_ps < 0.0 {
            return Err(format!(
                "agree_floor_ps must be finite and >= 0, got {}",
                self.agree_floor_ps
            ));
        }
        let (lo, hi) = self.plausible_ps;
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(format!(
                "plausible_ps must be a finite (lo, hi) band, got ({lo}, {hi})"
            ));
        }
        if !(self.max_failed_pair_fraction > 0.0 && self.max_failed_pair_fraction <= 1.0) {
            return Err(format!(
                "max_failed_pair_fraction must be in (0, 1], got {}",
                self.max_failed_pair_fraction
            ));
        }
        Ok(())
    }
}

/// A fault-injection campaign: what to inject and how hard the
/// measurement layer fights back.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The fault taxa and rates to inject.
    pub model: FaultModel,
    /// Retry/read-back/quarantine tuning.
    pub options: RobustOptions,
}

impl FaultPlan {
    /// The default chaos drill with all rates multiplied by `scale`.
    /// `scaled(0.0)` injects nothing and leaves outputs byte-identical
    /// to a run without any plan.
    pub fn scaled(scale: f64) -> Self {
        Self {
            model: FaultModel::default().scaled(scale),
            options: RobustOptions::default(),
        }
    }

    /// Checks the model and the options.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.model.validate()?;
        self.options.validate()
    }
}

/// What the fault layer saw and did, aggregated over any scope (one
/// pair, one board, or a whole fleet run — summaries merge by field-wise
/// addition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSummary {
    /// Logical measurements requested by the pipeline (primary reads;
    /// verification and retry reads are counted separately).
    pub reads: u64,
    /// Reads corrupted with a stuck-at-rail value.
    pub injected_stuck: u64,
    /// Reads dropped (timed out) by injection.
    pub injected_dropped: u64,
    /// Reads corrupted with a transient glitch offset.
    pub injected_glitch: u64,
    /// Reads corrupted with a byzantine scale factor.
    pub injected_flaky: u64,
    /// Reads that failed plausibility or verification and escalated to
    /// median-of-k recovery.
    pub suspect_reads: u64,
    /// Extra reads spent by the fault layer: one verification read per
    /// in-band primary, plus recovery retries.
    pub retry_reads: u64,
    /// Suspect reads recovered by MAD-filtered median.
    pub recovered_reads: u64,
    /// Suspect reads that exhausted their budget unrecovered.
    pub failed_reads: u64,
    /// Enrollment pairs excluded because a calibration read failed
    /// (the §III.C escape hatch).
    pub unreadable_pairs: u64,
    /// Response bits erased because a read-out failed at every vote.
    pub response_erasures: u64,
    /// Boards quarantined instead of contributing records.
    pub quarantined_boards: u64,
    /// Worker panics contained by the fleet engine.
    pub contained_panics: u64,
}

impl FaultSummary {
    /// Total injected read faults across the four taxa.
    pub fn injected_faults(&self) -> u64 {
        self.injected_stuck + self.injected_dropped + self.injected_glitch + self.injected_flaky
    }

    /// True when anything at all fired: an injected fault, a retry, a
    /// failed read, an excluded pair, an erased bit, a quarantine, or a
    /// contained panic. A clean run — even one that *counted* its reads
    /// — reports no activity, which is what keeps zero-fault output
    /// byte-identical.
    pub fn has_activity(&self) -> bool {
        self.injected_faults() > 0
            || self.suspect_reads > 0
            || self.retry_reads > 0
            || self.recovered_reads > 0
            || self.failed_reads > 0
            || self.unreadable_pairs > 0
            || self.response_erasures > 0
            || self.quarantined_boards > 0
            || self.contained_panics > 0
    }

    /// Field-wise addition of another summary into this one.
    pub fn merge(&mut self, other: &FaultSummary) {
        self.reads += other.reads;
        self.injected_stuck += other.injected_stuck;
        self.injected_dropped += other.injected_dropped;
        self.injected_glitch += other.injected_glitch;
        self.injected_flaky += other.injected_flaky;
        self.suspect_reads += other.suspect_reads;
        self.retry_reads += other.retry_reads;
        self.recovered_reads += other.recovered_reads;
        self.failed_reads += other.failed_reads;
        self.unreadable_pairs += other.unreadable_pairs;
        self.response_erasures += other.response_erasures;
        self.quarantined_boards += other.quarantined_boards;
        self.contained_panics += other.contained_panics;
    }
}

/// Emits a summary's non-zero fields as telemetry counters. Counters
/// are additive atomics, so per-board emission order does not affect
/// totals and parallel runs count exactly like serial ones.
pub(crate) fn emit_summary_counters(s: &FaultSummary) {
    let pairs: [(&str, u64); 13] = [
        ("robust.reads", s.reads),
        ("robust.injected.stuck", s.injected_stuck),
        ("robust.injected.dropped", s.injected_dropped),
        ("robust.injected.glitch", s.injected_glitch),
        ("robust.injected.flaky", s.injected_flaky),
        ("robust.suspect_reads", s.suspect_reads),
        ("robust.retry_reads", s.retry_reads),
        ("robust.recovered_reads", s.recovered_reads),
        ("robust.failed_reads", s.failed_reads),
        ("robust.pairs.unreadable", s.unreadable_pairs),
        ("robust.erasures", s.response_erasures),
        ("fleet.quarantined", s.quarantined_boards),
        ("fleet.panics.contained", s.contained_panics),
    ];
    for (name, value) in pairs {
        if value > 0 {
            telemetry::counter(name, value);
        }
    }
}

/// One fault-screened measurement channel: owns the fault and retry RNG
/// streams plus the counters for everything it injects and repairs.
struct RobustMeasurer<'a> {
    model: &'a FaultModel,
    opts: &'a RobustOptions,
    probe: DelayProbe,
    fault_rng: StdRng,
    retry_rng: StdRng,
    summary: FaultSummary,
}

impl<'a> RobustMeasurer<'a> {
    fn new(plan: &'a FaultPlan, probe: DelayProbe, fault_seed: u64, retry_seed: u64) -> Self {
        Self {
            model: &plan.model,
            opts: &plan.options,
            probe,
            fault_rng: StdRng::seed_from_u64(fault_seed),
            retry_rng: StdRng::seed_from_u64(retry_seed),
            summary: FaultSummary::default(),
        }
    }

    fn plausible(&self, v: f64) -> bool {
        let (lo, hi) = self.opts.plausible_ps;
        v.is_finite() && (lo..=hi).contains(&v)
    }

    /// Primary-vs-verification agreement tolerance: `agree_sigmas`
    /// effective probe sigmas, ×√2 for a difference of two reads, with
    /// an absolute floor for noiseless probes.
    fn agree_tolerance_ps(&self) -> f64 {
        (self.opts.agree_sigmas * self.probe.effective_sigma_ps() * std::f64::consts::SQRT_2)
            .max(self.opts.agree_floor_ps)
    }

    /// Passes a clean read through the fault model, counting what fired.
    fn inject(&mut self, clean_ps: f64) -> Option<f64> {
        use ropuf_silicon::InjectedFault::*;
        let (value, kind) = self.model.corrupt(&mut self.fault_rng, clean_ps);
        match kind {
            Clean => {}
            Stuck => self.summary.injected_stuck += 1,
            Dropped => self.summary.injected_dropped += 1,
            Glitch => self.summary.injected_glitch += 1,
            Flaky => self.summary.injected_flaky += 1,
        }
        value
    }

    /// An independent verification/retry read from the retry stream.
    fn read_from_retry_stream(&mut self, true_delay_ps: f64) -> Option<f64> {
        let clean = self.probe.measure_ps(&mut self.retry_rng, true_delay_ps);
        self.inject(clean)
    }

    /// One fault-screened measurement of `true_delay_ps`.
    ///
    /// The primary read always draws from `meas_rng`, keeping the
    /// measurement stream aligned with the plain pipeline; `None`
    /// means the read failed unrecoverably and the caller must invoke
    /// the §III.C escape hatch.
    fn read<R: Rng + ?Sized>(&mut self, meas_rng: &mut R, true_delay_ps: f64) -> Option<f64> {
        self.summary.reads += 1;
        let clean = self.probe.measure_ps(meas_rng, true_delay_ps);
        if self.model.reads_are_clean() {
            // Zero-rate fast path: no fault can fire, so skip
            // verification — byte-identical to the plain pipeline.
            return Some(clean);
        }
        let primary = self.inject(clean);
        let mut in_band = Vec::with_capacity(self.opts.readback_k);
        if let Some(v) = primary.filter(|&v| self.plausible(v)) {
            self.summary.retry_reads += 1;
            let verify = self.read_from_retry_stream(true_delay_ps);
            if let Some(w) = verify.filter(|&w| self.plausible(w)) {
                if (v - w).abs() <= self.agree_tolerance_ps() {
                    return Some(v);
                }
                in_band.push(w);
            }
            in_band.insert(0, v);
        }
        self.summary.suspect_reads += 1;
        self.recover(true_delay_ps, in_band)
    }

    /// Median-of-k recovery: spend the retry budget collecting in-band
    /// samples, reject outliers by MAD, and answer with the median.
    fn recover(&mut self, true_delay_ps: f64, mut in_band: Vec<f64>) -> Option<f64> {
        let mut spent = 0;
        while in_band.len() < self.opts.readback_k && spent < self.opts.retry_budget {
            spent += 1;
            self.summary.retry_reads += 1;
            if let Some(v) = self.read_from_retry_stream(true_delay_ps) {
                if self.plausible(v) {
                    in_band.push(v);
                }
            }
        }
        if in_band.len() < MIN_RECOVERY_READS {
            self.summary.failed_reads += 1;
            return None;
        }
        self.summary.recovered_reads += 1;
        Some(mad_filtered_median(&mut in_band, self.opts.mad_k))
    }
}

/// Median after MAD outlier rejection. `values` must be non-empty; the
/// median itself always survives rejection, so the result is always
/// defined.
fn mad_filtered_median(values: &mut [f64], mad_k: f64) -> f64 {
    values.sort_by(f64::total_cmp);
    let median = values[values.len() / 2];
    let mut deviations: Vec<f64> = values.iter().map(|v| (v - median).abs()).collect();
    deviations.sort_by(f64::total_cmp);
    // Floor the MAD so a set of identical samples still accepts itself.
    let mad = deviations[deviations.len() / 2].max(1.0e-9);
    let kept: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| (v - median).abs() <= mad_k * mad)
        .collect();
    kept[kept.len() / 2]
}

/// Fault-screened version of [`crate::calibrate::calibrate`]: the same
/// `n + 2` measurements in the same order, each through
/// [`RobustMeasurer::read`]. Any unrecoverable read fails the whole
/// calibration (`None`), which excludes the surrounding pair.
///
/// Like the plain path, the configuration delays come from the batched
/// sweep (a [`RingSweep`] view of the worker's
/// [`MeasureArena`]) instead of `n + 2` whole-ring walks; the screening
/// pipeline still sees exactly one logical measurement per
/// configuration, so fault injection, retries, and exclusion behave
/// identically. Each screened read bumps the `measure.batched` counter
/// (counted per read, not per calibration, because a failed read aborts
/// the remaining configurations).
fn robust_calibrate<R: Rng + ?Sized>(
    measurer: &mut RobustMeasurer<'_>,
    meas_rng: &mut R,
    ring: &RingSweep<'_>,
) -> Option<Calibration> {
    let n = ring.stages();
    let read = |measurer: &mut RobustMeasurer<'_>, meas_rng: &mut R, true_delay_ps: f64| {
        telemetry::counter("measure.batched", 1);
        measurer.read(meas_rng, true_delay_ps)
    };
    let all_selected_ps = read(measurer, meas_rng, ring.all_selected_ps())?;
    let bypass_ps = read(measurer, meas_rng, ring.all_bypassed_ps())?;
    let mut ddiff_ps = Vec::with_capacity(n);
    for i in 0..n {
        let leave_one_out = read(measurer, meas_rng, ring.all_but_ps(i))?;
        ddiff_ps.push(all_selected_ps - leave_one_out);
    }
    Some(Calibration::from_parts(
        ddiff_ps,
        all_selected_ps,
        bypass_ps,
    ))
}

/// Outcome of a fault-tolerant enrollment.
#[derive(Debug, Clone)]
pub struct RobustEnrollment {
    /// The enrollment; unreadable pairs appear as excluded (`None`)
    /// entries, exactly like threshold-excluded pairs.
    pub enrollment: Enrollment,
    /// Pairs dropped because a calibration read failed unrecoverably.
    pub unreadable_pairs: usize,
    /// Total pairs attempted.
    pub total_pairs: usize,
    /// Everything the fault layer saw while enrolling.
    pub summary: FaultSummary,
}

/// Fault-tolerant counterpart of
/// [`ConfigurableRoPuf::enroll_seeded`]: same per-pair seed
/// derivation and measurement order, but every read goes through the
/// retry/read-back pipeline and unreadable pairs are excluded via
/// §III.C instead of poisoning the enrollment.
pub fn enroll_robust(
    puf: &ConfigurableRoPuf,
    seed: u64,
    board: &Board,
    tech: &Technology,
    env: Environment,
    opts: &EnrollOptions,
    plan: &FaultPlan,
) -> RobustEnrollment {
    let mut arena = MeasureArena::new();
    enroll_robust_in(puf, seed, board, tech, env, opts, plan, &mut arena)
}

/// Calibrates and selects one pair whose configuration delays are
/// already laid out in an arena sweep. `top` and `bottom` are the
/// pair's two [`RingSweep`] views; fault, retry, and measurement
/// streams are derived exactly as in the pre-arena per-pair loop, so
/// the result is bit-identical to it.
#[allow(clippy::too_many_arguments)]
fn enroll_pair_robust(
    spec: &PairSpec,
    index: usize,
    seed: u64,
    opts: &EnrollOptions,
    plan: &FaultPlan,
    top: &RingSweep<'_>,
    bottom: &RingSweep<'_>,
    summary: &mut FaultSummary,
    unreadable_pairs: &mut usize,
) -> Option<EnrolledPair> {
    let _pair_span = telemetry::span("enroll.pair");
    let pair_seed = split_seed(seed, index as u64);
    let mut meas_rng = StdRng::seed_from_u64(pair_seed);
    let mut measurer = RobustMeasurer::new(
        plan,
        opts.probe,
        split_seed(pair_seed, STREAM_FAULT),
        split_seed(pair_seed, STREAM_RETRY),
    );
    let calibrations = robust_calibrate(&mut measurer, &mut meas_rng, top).and_then(|cal_top| {
        let cal_bottom = robust_calibrate(&mut measurer, &mut meas_rng, bottom)?;
        Some((cal_top, cal_bottom))
    });
    let enrolled = match calibrations {
        Some((cal_top, cal_bottom)) => {
            ConfigurableRoPuf::select_pair(spec, &cal_top, &cal_bottom, opts)
        }
        None => {
            *unreadable_pairs += 1;
            measurer.summary.unreadable_pairs += 1;
            None
        }
    };
    summary.merge(&measurer.summary);
    enrolled
}

/// [`enroll_robust`] against a caller-owned [`MeasureArena`], mirroring
/// [`ConfigurableRoPuf::enroll_seeded_in`]: uniform floorplans lay the
/// whole board out as one structure-of-arrays block (pair `i`'s top
/// ring at arena row `2i`, bottom at `2i + 1`) and sweep it once;
/// floorplans whose pairs disagree on stage count fall back to one
/// two-ring block per pair. Either way every screened read sees the
/// same true delay, in the same order, as [`enroll_robust`] — the two
/// are bit-identical, and [`MeasureArena::begin_block`]'s full reset
/// guarantees no cross-board state when fleet workers reuse arenas.
#[allow(clippy::too_many_arguments)]
pub fn enroll_robust_in(
    puf: &ConfigurableRoPuf,
    seed: u64,
    board: &Board,
    tech: &Technology,
    env: Environment,
    opts: &EnrollOptions,
    plan: &FaultPlan,
    arena: &mut MeasureArena,
) -> RobustEnrollment {
    let extra = opts.extra_corners(env);
    if !extra.is_empty() {
        return enroll_robust_multi_corner_in(
            puf, seed, board, tech, env, &extra, opts, plan, arena,
        );
    }
    let mut summary = FaultSummary::default();
    let mut unreadable_pairs = 0;
    let specs = puf.specs();
    let stages = specs.first().map_or(0, PairSpec::stages);
    let uniform = stages > 0 && specs.iter().all(|spec| spec.stages() == stages);
    let mut pairs = Vec::with_capacity(specs.len());
    if uniform {
        arena.begin_block(2 * specs.len(), stages);
        for (i, spec) in specs.iter().enumerate() {
            let pair = spec.bind(board);
            pair.top().stage_delays_into(env, tech, arena, 2 * i);
            pair.bottom().stage_delays_into(env, tech, arena, 2 * i + 1);
        }
        let sweep = arena.sweep();
        for (i, spec) in specs.iter().enumerate() {
            pairs.push(enroll_pair_robust(
                spec,
                i,
                seed,
                opts,
                plan,
                &sweep.ring(2 * i),
                &sweep.ring(2 * i + 1),
                &mut summary,
                &mut unreadable_pairs,
            ));
        }
    } else {
        for (i, spec) in specs.iter().enumerate() {
            let pair = spec.bind(board);
            arena.begin_block(2, spec.stages());
            pair.top().stage_delays_into(env, tech, arena, 0);
            pair.bottom().stage_delays_into(env, tech, arena, 1);
            let sweep = arena.sweep();
            pairs.push(enroll_pair_robust(
                spec,
                i,
                seed,
                opts,
                plan,
                &sweep.ring(0),
                &sweep.ring(1),
                &mut summary,
                &mut unreadable_pairs,
            ));
        }
    }
    RobustEnrollment {
        enrollment: Enrollment::from_parts(pairs, env),
        unreadable_pairs,
        total_pairs: puf.pair_count(),
        summary,
    }
}

/// Fault-screens every pair's calibration at one corner of the
/// enrollment corner list. Pair `i` draws its measurement RNG from
/// [`corner_stream`]`(seed, i, corner)` and its fault/retry streams from
/// sub-splits of that corner seed — for corner 0 those are exactly the
/// legacy per-pair streams, and every (pair, corner) cell is independent
/// of evaluation order. `None` marks a calibration whose read failed
/// unrecoverably at this corner.
#[allow(clippy::too_many_arguments)]
fn robust_calibrate_corner(
    puf: &ConfigurableRoPuf,
    seed: u64,
    board: &Board,
    tech: &Technology,
    corner_env: Environment,
    corner: usize,
    opts: &EnrollOptions,
    plan: &FaultPlan,
    arena: &mut MeasureArena,
    summary: &mut FaultSummary,
) -> Vec<Option<(Calibration, Calibration)>> {
    let specs = puf.specs();
    let stages = specs.first().map_or(0, PairSpec::stages);
    let uniform = stages > 0 && specs.iter().all(|spec| spec.stages() == stages);
    let mut screen = |top: &RingSweep<'_>, bottom: &RingSweep<'_>, i: usize| {
        let corner_seed = corner_stream(seed, i as u64, corner);
        let mut meas_rng = StdRng::seed_from_u64(corner_seed);
        let mut measurer = RobustMeasurer::new(
            plan,
            opts.probe,
            split_seed(corner_seed, STREAM_FAULT),
            split_seed(corner_seed, STREAM_RETRY),
        );
        let cals = robust_calibrate(&mut measurer, &mut meas_rng, top).and_then(|cal_top| {
            let cal_bottom = robust_calibrate(&mut measurer, &mut meas_rng, bottom)?;
            Some((cal_top, cal_bottom))
        });
        summary.merge(&measurer.summary);
        cals
    };
    let mut cals = Vec::with_capacity(specs.len());
    if uniform {
        arena.begin_block(2 * specs.len(), stages);
        for (i, spec) in specs.iter().enumerate() {
            let pair = spec.bind(board);
            pair.top().stage_delays_into(corner_env, tech, arena, 2 * i);
            pair.bottom()
                .stage_delays_into(corner_env, tech, arena, 2 * i + 1);
        }
        let sweep = arena.sweep();
        for i in 0..specs.len() {
            cals.push(screen(&sweep.ring(2 * i), &sweep.ring(2 * i + 1), i));
        }
    } else {
        for (i, spec) in specs.iter().enumerate() {
            let pair = spec.bind(board);
            arena.begin_block(2, spec.stages());
            pair.top().stage_delays_into(corner_env, tech, arena, 0);
            pair.bottom().stage_delays_into(corner_env, tech, arena, 1);
            let sweep = arena.sweep();
            cals.push(screen(&sweep.ring(0), &sweep.ring(1), i));
        }
    }
    cals
}

/// Multi-corner form of [`enroll_robust_in`]: calibrates every pair at
/// the enrollment environment plus each extra corner (one arena block
/// per corner, fault-screened reads throughout), then runs
/// min-margin-across-corners selection. A pair whose calibration fails
/// unrecoverably at *any* corner is excluded via §III.C — a pair that
/// cannot be read at a corner cannot promise a margin there.
#[allow(clippy::too_many_arguments)]
fn enroll_robust_multi_corner_in(
    puf: &ConfigurableRoPuf,
    seed: u64,
    board: &Board,
    tech: &Technology,
    env: Environment,
    extra: &[Environment],
    opts: &EnrollOptions,
    plan: &FaultPlan,
    arena: &mut MeasureArena,
) -> RobustEnrollment {
    let mut summary = FaultSummary::default();
    let mut cals: Vec<Vec<Option<(Calibration, Calibration)>>> =
        Vec::with_capacity(1 + extra.len());
    for (c, &corner_env) in std::iter::once(&env).chain(extra).enumerate() {
        cals.push(robust_calibrate_corner(
            puf,
            seed,
            board,
            tech,
            corner_env,
            c,
            opts,
            plan,
            arena,
            &mut summary,
        ));
    }
    let mut unreadable_pairs = 0;
    let pairs = puf
        .specs()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let _pair_span = telemetry::span("enroll.pair");
            let refs: Option<Vec<(&Calibration, &Calibration)>> = cals
                .iter()
                .map(|corner| corner[i].as_ref().map(|(t, b)| (t, b)))
                .collect();
            match refs {
                Some(refs) => ConfigurableRoPuf::select_pair_multi(spec, &refs, opts),
                None => {
                    unreadable_pairs += 1;
                    summary.unreadable_pairs += 1;
                    None
                }
            }
        })
        .collect();
    RobustEnrollment {
        enrollment: Enrollment::from_parts(pairs, env),
        unreadable_pairs,
        total_pairs: puf.pair_count(),
        summary,
    }
}

/// One fault-screened response pass over a pre-bound enrollment.
/// Erasures (`None`) mark bits whose read-out failed unrecoverably.
fn respond_once<R: Rng + ?Sized>(
    bound: &BoundEnrollment<'_, '_>,
    meas_rng: &mut R,
    measurer: &mut RobustMeasurer<'_>,
    tech: &Technology,
    env: Environment,
) -> Vec<Option<bool>> {
    let scale = tech.delay_scale(env);
    bound
        .pairs()
        .iter()
        .map(|(p, pair)| {
            let d_top = measurer.read(
                meas_rng,
                pair.top()
                    .ring_delay_ps_scaled(p.top_config(), scale, env, tech),
            );
            let d_bottom = measurer.read(
                meas_rng,
                pair.bottom()
                    .ring_delay_ps_scaled(p.bottom_config(), scale, env, tech),
            );
            match (d_top, d_bottom) {
                (Some(t), Some(b)) => Some(t > b),
                _ => None,
            }
        })
        .collect()
}

/// Fault-tolerant counterpart of [`Enrollment::respond`] /
/// [`Enrollment::respond_majority`], seeded the way the fleet engine
/// seeds a corner read-out: the measurement RNG comes straight from
/// `seed`, the fault and retry streams from sub-splits of it.
///
/// With `votes > 1`, each bit is the majority over its *valid* votes;
/// a bit with no valid votes, or a tie, is an erasure. With every vote
/// valid this reduces exactly to the plain majority rule.
///
/// # Panics
///
/// Panics if `votes` is zero or even (same contract as
/// [`Enrollment::respond_majority`]).
#[allow(clippy::too_many_arguments)] // mirrors the plain respond_majority signature plus the plan
pub fn respond_robust(
    enrollment: &Enrollment,
    seed: u64,
    board: &Board,
    tech: &Technology,
    env: Environment,
    probe: &DelayProbe,
    votes: usize,
    plan: &FaultPlan,
) -> (Vec<Option<bool>>, FaultSummary) {
    respond_robust_bound(&enrollment.bind(board), seed, tech, env, probe, votes, plan)
}

/// [`respond_robust`] over a pre-bound enrollment — the form the fleet
/// engine calls so one [`Enrollment::bind`] serves every corner of the
/// environment sweep. Binding draws no randomness, so results are
/// byte-identical to [`respond_robust`].
///
/// # Panics
///
/// Panics if `votes` is zero or even.
#[allow(clippy::too_many_arguments)] // mirrors respond_robust minus the board
pub fn respond_robust_bound(
    bound: &BoundEnrollment<'_, '_>,
    seed: u64,
    tech: &Technology,
    env: Environment,
    probe: &DelayProbe,
    votes: usize,
    plan: &FaultPlan,
) -> (Vec<Option<bool>>, FaultSummary) {
    assert!(
        votes % 2 == 1,
        "majority voting needs an odd vote count, got {votes}"
    );
    let mut meas_rng = StdRng::seed_from_u64(seed);
    let mut measurer = RobustMeasurer::new(
        plan,
        *probe,
        split_seed(seed, STREAM_FAULT),
        split_seed(seed, STREAM_RETRY),
    );
    let reads: Vec<Vec<Option<bool>>> = (0..votes)
        .map(|_| respond_once(bound, &mut meas_rng, &mut measurer, tech, env))
        .collect();
    let bits: Vec<Option<bool>> = (0..reads[0].len())
        .map(|i| {
            let (mut ones, mut zeros) = (0usize, 0usize);
            for vote in &reads {
                match vote[i] {
                    Some(true) => ones += 1,
                    Some(false) => zeros += 1,
                    None => {}
                }
            }
            if ones + zeros == 0 || ones == zeros {
                None
            } else {
                Some(ones > zeros)
            }
        })
        .collect();
    let mut summary = measurer.summary;
    summary.response_erasures += bits.iter().filter(|b| b.is_none()).count() as u64;
    (bits, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ropuf_silicon::board::BoardId;
    use ropuf_silicon::SiliconSim;

    fn setup(units: usize) -> (Board, Technology) {
        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(123);
        let board = sim.grow_board_with_id(&mut rng, BoardId(0), units, 16);
        (board, *sim.technology())
    }

    #[test]
    fn zero_rate_plan_reproduces_plain_enrollment_exactly() {
        let (board, tech) = setup(80);
        let puf = ConfigurableRoPuf::tiled_interleaved(80, 4);
        let opts = EnrollOptions::default();
        let env = Environment::nominal();
        let plain = puf.enroll_seeded(41, &board, &tech, env, &opts);
        let plan = FaultPlan::scaled(0.0);
        let robust = enroll_robust(&puf, 41, &board, &tech, env, &opts, &plan);
        assert_eq!(robust.enrollment, plain);
        assert_eq!(robust.unreadable_pairs, 0);
        assert!(!robust.summary.has_activity());
        assert!(robust.summary.reads > 0);
    }

    #[test]
    fn zero_rate_response_matches_plain_response_exactly() {
        let (board, tech) = setup(80);
        let puf = ConfigurableRoPuf::tiled_interleaved(80, 4);
        let opts = EnrollOptions::default();
        let env = Environment::nominal();
        let enrollment = puf.enroll_seeded(41, &board, &tech, env, &opts);
        let probe = DelayProbe::new(0.25, 1);
        let mut rng = StdRng::seed_from_u64(99);
        let plain = enrollment.respond(&mut rng, &board, &tech, env, &probe);
        let plan = FaultPlan::scaled(0.0);
        let (bits, summary) = respond_robust(&enrollment, 99, &board, &tech, env, &probe, 1, &plan);
        let robust: Vec<bool> = bits.into_iter().map(|b| b.expect("no erasures")).collect();
        let plain: Vec<bool> = (0..plain.len()).map(|i| plain.get(i).unwrap()).collect();
        assert_eq!(robust, plain);
        assert!(!summary.has_activity());
    }

    #[test]
    fn faulty_enrollment_is_deterministic_and_counts_its_work() {
        let (board, tech) = setup(80);
        let puf = ConfigurableRoPuf::tiled_interleaved(80, 4);
        let opts = EnrollOptions::default();
        let env = Environment::nominal();
        let plan = FaultPlan::scaled(10.0);
        plan.validate().expect("valid plan");
        let a = enroll_robust(&puf, 41, &board, &tech, env, &opts, &plan);
        let b = enroll_robust(&puf, 41, &board, &tech, env, &opts, &plan);
        assert_eq!(a.enrollment, b.enrollment);
        assert_eq!(a.summary, b.summary);
        assert!(
            a.summary.injected_faults() > 0,
            "faults fired: {:?}",
            a.summary
        );
        assert!(a.summary.suspect_reads > 0);
        assert!(
            a.summary.recovered_reads + a.summary.failed_reads >= a.summary.suspect_reads
                || a.summary.recovered_reads > 0
        );
    }

    #[test]
    fn moderate_faults_rarely_change_the_enrolled_bits() {
        // The whole point of read-back + median recovery: the default
        // chaos rates perturb reads but the enrolled bits survive.
        let (board, tech) = setup(120);
        let puf = ConfigurableRoPuf::tiled_interleaved(120, 4);
        let opts = EnrollOptions::default();
        let env = Environment::nominal();
        let plain = puf.enroll_seeded(7, &board, &tech, env, &opts);
        let robust = enroll_robust(&puf, 7, &board, &tech, env, &opts, &FaultPlan::scaled(1.0));
        assert!(robust.summary.injected_faults() > 0);
        // Compare the bits of pairs enrolled by both paths.
        let mut compared = 0;
        for (a, b) in plain.pairs().iter().zip(robust.enrollment.pairs()) {
            if let (Some(a), Some(b)) = (a, b) {
                assert_eq!(
                    a.expected_bit(),
                    b.expected_bit(),
                    "bit flipped by recovery"
                );
                compared += 1;
            }
        }
        assert!(
            compared >= 10,
            "most pairs enrolled under faults: {compared}"
        );
    }

    #[test]
    fn unrecoverable_reads_exclude_pairs_instead_of_poisoning() {
        let (board, tech) = setup(80);
        let puf = ConfigurableRoPuf::tiled_interleaved(80, 4);
        let opts = EnrollOptions::default();
        let env = Environment::nominal();
        // Heavy drop rate and a tiny budget: recovery often starves.
        let plan = FaultPlan {
            model: ropuf_silicon::FaultModel {
                drop_rate: 0.6,
                stuck_rate: 0.2,
                glitch_rate: 0.0,
                flaky_rate: 0.0,
                ..ropuf_silicon::FaultModel::default()
            },
            options: RobustOptions {
                retry_budget: 2,
                readback_k: 3,
                ..RobustOptions::default()
            },
        };
        plan.validate().expect("valid plan");
        let robust = enroll_robust(&puf, 5, &board, &tech, env, &opts, &plan);
        assert!(
            robust.unreadable_pairs > 0,
            "starved pairs: {:?}",
            robust.summary
        );
        assert_eq!(
            robust.summary.unreadable_pairs as usize,
            robust.unreadable_pairs
        );
        // Unreadable pairs show up as exclusions, not bogus bits.
        assert!(robust.enrollment.bit_count() < robust.total_pairs);
    }

    #[test]
    fn zero_rate_multi_corner_plan_reproduces_plain_multi_corner_enrollment() {
        let (board, tech) = setup(80);
        let puf = ConfigurableRoPuf::tiled_interleaved(80, 4);
        let opts = EnrollOptions {
            corners: ropuf_silicon::CornerSet::worst_case(),
            ..EnrollOptions::default()
        };
        let env = Environment::nominal();
        let plain = puf.enroll_seeded(41, &board, &tech, env, &opts);
        let plan = FaultPlan::scaled(0.0);
        let robust = enroll_robust(&puf, 41, &board, &tech, env, &opts, &plan);
        assert_eq!(robust.enrollment, plain);
        assert_eq!(robust.unreadable_pairs, 0);
        assert!(!robust.summary.has_activity());
        assert!(robust.summary.reads > 0);
    }

    #[test]
    fn faulty_multi_corner_enrollment_is_deterministic() {
        let (board, tech) = setup(80);
        let puf = ConfigurableRoPuf::tiled_interleaved(80, 4);
        let opts = EnrollOptions {
            corners: ropuf_silicon::CornerSet::worst_case(),
            ..EnrollOptions::default()
        };
        let env = Environment::nominal();
        let plan = FaultPlan::scaled(10.0);
        let a = enroll_robust(&puf, 41, &board, &tech, env, &opts, &plan);
        let b = enroll_robust(&puf, 41, &board, &tech, env, &opts, &plan);
        assert_eq!(a.enrollment, b.enrollment);
        assert_eq!(a.summary, b.summary);
        assert!(a.summary.injected_faults() > 0);
    }

    #[test]
    fn multi_corner_unrecoverable_reads_exclude_pairs() {
        let (board, tech) = setup(80);
        let puf = ConfigurableRoPuf::tiled_interleaved(80, 4);
        let opts = EnrollOptions {
            corners: ropuf_silicon::CornerSet::worst_case(),
            ..EnrollOptions::default()
        };
        let env = Environment::nominal();
        let plan = FaultPlan {
            model: ropuf_silicon::FaultModel {
                drop_rate: 0.6,
                stuck_rate: 0.2,
                glitch_rate: 0.0,
                flaky_rate: 0.0,
                ..ropuf_silicon::FaultModel::default()
            },
            options: RobustOptions {
                retry_budget: 2,
                readback_k: 3,
                ..RobustOptions::default()
            },
        };
        let robust = enroll_robust(&puf, 5, &board, &tech, env, &opts, &plan);
        assert!(robust.unreadable_pairs > 0);
        assert_eq!(
            robust.summary.unreadable_pairs as usize,
            robust.unreadable_pairs
        );
        assert!(robust.enrollment.bit_count() < robust.total_pairs);
    }

    #[test]
    fn mad_median_rejects_planted_outliers() {
        let mut values = vec![5000.1, 5000.3, 4999.9, 5300.0, 5000.2];
        let v = mad_filtered_median(&mut values, 5.0);
        assert!((v - 5000.2).abs() < 1.0, "outlier rejected, got {v}");
        let mut identical = vec![42.0; 5];
        assert_eq!(mad_filtered_median(&mut identical, 5.0), 42.0);
    }

    #[test]
    fn invalid_options_are_rejected() {
        let bad = RobustOptions {
            retry_budget: 0,
            ..RobustOptions::default()
        };
        assert!(bad.validate().is_err());
        let bad = RobustOptions {
            readback_k: 1,
            ..RobustOptions::default()
        };
        assert!(bad.validate().is_err());
        let bad = RobustOptions {
            plausible_ps: (10.0, 1.0),
            ..RobustOptions::default()
        };
        assert!(bad.validate().is_err());
        let bad = RobustOptions {
            max_failed_pair_fraction: 0.0,
            ..RobustOptions::default()
        };
        assert!(bad.validate().is_err());
        assert!(RobustOptions::default().validate().is_ok());
    }
}
