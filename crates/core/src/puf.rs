//! The end-to-end configurable RO-PUF pipeline: floorplan → enrollment →
//! response.
//!
//! Enrollment happens once, at chip-test time, at a chosen operating
//! point: every ring pair is calibrated ([`crate::calibrate`]), the
//! selection algorithm picks its configuration
//! ([`crate::select`]), and the configuration plus expected bit are
//! stored. Deployed devices then [`Enrollment::respond`] by measuring the
//! *configured* rings only — possibly at a different operating point,
//! which is exactly where reliability is decided.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use ropuf_core::puf::{ConfigurableRoPuf, EnrollOptions};
//! use ropuf_silicon::board::BoardId;
//! use ropuf_silicon::{DelayProbe, Environment, SiliconSim};
//!
//! let sim = SiliconSim::default_spartan();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(4);
//! let board = sim.grow_board_with_id(&mut rng, BoardId(0), 64, 8);
//!
//! let puf = ConfigurableRoPuf::tiled(board.len(), 4); // 8 pairs of 4-stage rings
//! let enrollment = puf.enroll(
//!     &mut rng,
//!     &board,
//!     sim.technology(),
//!     Environment::nominal(),
//!     &EnrollOptions::default(),
//! );
//! let bits = enrollment.respond(
//!     &mut rng,
//!     &board,
//!     sim.technology(),
//!     Environment::nominal(),
//!     &DelayProbe::noiseless(),
//! );
//! assert_eq!(bits.len(), 8);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ropuf_num::bits::BitVec;
use ropuf_silicon::{Board, CornerSet, DelayProbe, Environment, MeasureArena, Technology};
use ropuf_telemetry as telemetry;

use crate::calibrate::{calibrate, calibrate_from_sweep, Calibration};
use crate::config::{ConfigVector, ParityPolicy};
use crate::error::Error;
use crate::fleet::{parallel_map_indexed, split_seed};
use crate::ro::{ConfigurableRo, RoPair};
use crate::select::{
    case1_multi_corner, case1_with_offset, case2_multi_corner, case2_with_offset, CornerDelays,
};

/// Base of the per-pair RNG stream family used for extra-corner
/// calibration: corner `c ≥ 1` of pair `i` draws from
/// `split_seed(split_seed(seed, i), BASE + c)`. Corner 0 (the
/// enrollment environment) keeps the legacy `split_seed(seed, i)`
/// stream, which is what makes corners-off enrollment byte-identical
/// to the pre-multi-corner pipeline. The base is chosen clear of the
/// other pair-seed-derived streams (`u64::MAX - 2 ..= u64::MAX - 4`).
const STREAM_ENROLL_CORNER_BASE: u64 = u64::MAX - 16;

/// RNG stream seed for calibrating pair `pair` at corner index `corner`
/// of the enrollment corner list (index 0 = the enrollment
/// environment).
pub(crate) fn corner_stream(seed: u64, pair: u64, corner: usize) -> u64 {
    let pair_seed = split_seed(seed, pair);
    if corner == 0 {
        pair_seed
    } else {
        split_seed(pair_seed, STREAM_ENROLL_CORNER_BASE + corner as u64)
    }
}

/// Which selection algorithm enrollment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectionMode {
    /// Case-1: one shared configuration for both rings.
    Case1,
    /// Case-2: independent configurations with equal selected counts.
    #[default]
    Case2,
}

/// Enrollment options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnrollOptions {
    /// Selection algorithm.
    pub mode: SelectionMode,
    /// Oscillation-parity policy for the selected configurations.
    pub parity: ParityPolicy,
    /// Reliability threshold `Rth` (ps): pairs whose selection margin
    /// falls below it produce no bit (§IV.E). Zero keeps every pair.
    pub threshold_ps: f64,
    /// Plausibility band for calibrated per-stage `ddiff` values, ps.
    /// Pairs with any stage outside the band are excluded — the
    /// §III.C escape hatch applied to *defective* silicon (see
    /// [`ropuf_silicon::defects`]). `None` disables screening.
    pub plausible_ddiff_ps: Option<(f64, f64)>,
    /// Delay probe used for calibration measurements.
    pub probe: DelayProbe,
    /// Operating points selection must hold margin at. Empty (the
    /// default) keeps the paper's nominal-only behavior: only the
    /// enrollment environment is calibrated and the §III.D solvers run
    /// unchanged. Non-empty switches to min-margin-across-corners
    /// selection over the listed corners *plus* the enrollment
    /// environment (which is deduplicated if listed); pairs degenerate
    /// at any corner — a tie or a polarity flip — are excluded via the
    /// §III.C escape hatch.
    pub corners: CornerSet,
}

impl Default for EnrollOptions {
    fn default() -> Self {
        Self {
            mode: SelectionMode::Case2,
            parity: ParityPolicy::ForceOdd,
            threshold_ps: 0.0,
            plausible_ddiff_ps: None,
            probe: DelayProbe::new(0.25, 4),
            corners: CornerSet::empty(),
        }
    }
}

impl EnrollOptions {
    /// Starts a builder pre-loaded with the defaults.
    ///
    /// # Examples
    ///
    /// ```
    /// use ropuf_core::config::ParityPolicy;
    /// use ropuf_core::puf::{EnrollOptions, SelectionMode};
    ///
    /// let opts = EnrollOptions::builder()
    ///     .selection(SelectionMode::Case2)
    ///     .parity(ParityPolicy::Ignore)
    ///     .build();
    /// assert_eq!(opts.parity, ParityPolicy::Ignore);
    /// ```
    pub fn builder() -> EnrollOptionsBuilder {
        EnrollOptionsBuilder {
            opts: Self::default(),
        }
    }

    /// The corners selection evaluates *in addition to* the enrollment
    /// environment `env`: [`EnrollOptions::corners`] with `env` itself
    /// removed. Empty means nominal-only enrollment — the exact legacy
    /// pipeline, byte for byte.
    pub fn extra_corners(&self, env: Environment) -> Vec<Environment> {
        self.corners.iter().filter(|&c| c != env).collect()
    }
}

/// Fluent builder for [`EnrollOptions`]; start with
/// [`EnrollOptions::builder`].
#[derive(Debug, Clone, Copy)]
pub struct EnrollOptionsBuilder {
    opts: EnrollOptions,
}

impl EnrollOptionsBuilder {
    /// Selection algorithm enrollment runs.
    pub fn selection(mut self, mode: SelectionMode) -> Self {
        self.opts.mode = mode;
        self
    }

    /// Oscillation-parity policy for selected configurations.
    pub fn parity(mut self, parity: ParityPolicy) -> Self {
        self.opts.parity = parity;
        self
    }

    /// Reliability threshold `Rth` in picoseconds (§IV.E).
    pub fn threshold_ps(mut self, threshold_ps: f64) -> Self {
        self.opts.threshold_ps = threshold_ps;
        self
    }

    /// Plausibility band `[lo, hi]` (ps) for calibrated `ddiff` values.
    pub fn plausible_ddiff_ps(mut self, lo: f64, hi: f64) -> Self {
        self.opts.plausible_ddiff_ps = Some((lo, hi));
        self
    }

    /// Delay probe used for calibration measurements.
    pub fn probe(mut self, probe: DelayProbe) -> Self {
        self.opts.probe = probe;
        self
    }

    /// Corner set for min-margin-across-corners selection (see
    /// [`EnrollOptions::corners`]).
    pub fn corners(mut self, corners: CornerSet) -> Self {
        self.opts.corners = corners;
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics when the options are inconsistent (see
    /// [`try_build`](Self::try_build) for the fallible form).
    pub fn build(self) -> EnrollOptions {
        self.try_build().expect("invalid enrollment options")
    }

    /// Finishes the builder, rejecting inconsistent options.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Enrollment`] when the threshold is negative or
    /// not finite, or the plausibility band is inverted or not finite.
    pub fn try_build(self) -> Result<EnrollOptions, Error> {
        let o = &self.opts;
        if !o.threshold_ps.is_finite() || o.threshold_ps < 0.0 {
            return Err(Error::Enrollment(format!(
                "reliability threshold must be finite and non-negative, got {}",
                o.threshold_ps
            )));
        }
        if let Some((lo, hi)) = o.plausible_ddiff_ps {
            if !lo.is_finite() || !hi.is_finite() || lo > hi {
                return Err(Error::Enrollment(format!(
                    "plausibility band [{lo}, {hi}] must be finite and ordered"
                )));
            }
        }
        Ok(self.opts)
    }
}

/// Device-independent floorplan: which board units form each ring pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairSpec {
    top: Vec<usize>,
    bottom: Vec<usize>,
}

impl PairSpec {
    /// Builds a pair from explicit unit index lists.
    ///
    /// # Panics
    ///
    /// Panics if the lists are empty or have different lengths. Use
    /// [`try_new`](Self::try_new) to validate untrusted layouts without
    /// unwinding.
    #[deprecated(note = "use `PairSpec::try_new` — crate boundaries reject bad layouts as errors")]
    pub fn new(top: Vec<usize>, bottom: Vec<usize>) -> Self {
        Self::try_new(top, bottom).expect("invalid pair layout")
    }

    /// Builds a pair from explicit unit index lists, rejecting malformed
    /// layouts instead of panicking.
    ///
    /// # Errors
    ///
    /// [`Error::Selection`] when `top` is empty or the lists differ in
    /// length.
    pub fn try_new(top: Vec<usize>, bottom: Vec<usize>) -> Result<Self, Error> {
        if top.is_empty() {
            return Err(Error::Selection(
                "rings need at least one stage".to_string(),
            ));
        }
        if top.len() != bottom.len() {
            return Err(Error::Selection(format!(
                "paired rings must be equally sized, got {} and {}",
                top.len(),
                bottom.len()
            )));
        }
        Ok(Self { top, bottom })
    }

    /// Splits `2n` consecutive units starting at `start` into a
    /// top/bottom pair.
    pub fn split_at(start: usize, stages: usize) -> Self {
        Self::try_new(
            (start..start + stages).collect(),
            (start + stages..start + 2 * stages).collect(),
        )
        .expect("split ranges are equal-length by construction")
    }

    /// Interleaves `2n` consecutive units starting at `start`: even
    /// offsets form the top ring, odd offsets the bottom ring.
    ///
    /// Interleaving makes each stage's Δd a difference of *physically
    /// adjacent* devices, so the smooth systematic process gradient
    /// cancels stage-by-stage instead of accumulating into a
    /// board-global bias that correlates bits across chips. This is the
    /// classic "adjacent RO pairs" layout rule; the
    /// `repro ablate-layout` experiment quantifies the difference.
    pub fn interleaved_at(start: usize, stages: usize) -> Self {
        Self::try_new(
            (0..stages).map(|i| start + 2 * i).collect(),
            (0..stages).map(|i| start + 2 * i + 1).collect(),
        )
        .expect("interleaved ranges are equal-length by construction")
    }

    /// Unit indices of the top ring.
    pub fn top(&self) -> &[usize] {
        &self.top
    }

    /// Unit indices of the bottom ring.
    pub fn bottom(&self) -> &[usize] {
        &self.bottom
    }

    /// Stages per ring.
    pub fn stages(&self) -> usize {
        self.top.len()
    }

    /// Materializes the pair as ring views over a board.
    ///
    /// # Panics
    ///
    /// Panics if any index is outside the board.
    pub fn bind<'a>(&self, board: &'a Board) -> RoPair<'a> {
        let ring = |stages: &[usize]| {
            ConfigurableRo::try_new(board, stages.to_vec()).expect("pair indices outside the board")
        };
        RoPair::try_new(ring(&self.top), ring(&self.bottom))
            .expect("paired rings are equal-length by construction")
    }
}

/// A configurable RO PUF floorplan: a list of ring pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigurableRoPuf {
    specs: Vec<PairSpec>,
}

impl ConfigurableRoPuf {
    /// Builds a PUF from explicit pair specs.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn new(specs: Vec<PairSpec>) -> Self {
        assert!(!specs.is_empty(), "a PUF needs at least one ring pair");
        Self { specs }
    }

    /// Tiles `total_units` board units into as many consecutive
    /// `stages`-per-ring pairs as fit (`⌊total / 2·stages⌋` pairs).
    ///
    /// # Panics
    ///
    /// Panics if fewer than one pair fits.
    pub fn tiled(total_units: usize, stages: usize) -> Self {
        assert!(stages > 0, "rings need at least one stage");
        let pairs = total_units / (2 * stages);
        assert!(
            pairs > 0,
            "{total_units} units cannot host a {stages}-stage pair"
        );
        Self::new(
            (0..pairs)
                .map(|p| PairSpec::split_at(p * 2 * stages, stages))
                .collect(),
        )
    }

    /// Like [`tiled`](Self::tiled) but with interleaved pairs (see
    /// [`PairSpec::interleaved_at`]) — the layout that decorrelates bits
    /// from the board's systematic process gradient. Prefer this for
    /// fleet-scale deployments.
    ///
    /// # Panics
    ///
    /// Panics if fewer than one pair fits.
    pub fn tiled_interleaved(total_units: usize, stages: usize) -> Self {
        assert!(stages > 0, "rings need at least one stage");
        let pairs = total_units / (2 * stages);
        assert!(
            pairs > 0,
            "{total_units} units cannot host a {stages}-stage pair"
        );
        Self::new(
            (0..pairs)
                .map(|p| PairSpec::interleaved_at(p * 2 * stages, stages))
                .collect(),
        )
    }

    /// The floorplan's pair specs.
    pub fn specs(&self) -> &[PairSpec] {
        &self.specs
    }

    /// Number of ring pairs (= maximum bits).
    pub fn pair_count(&self) -> usize {
        self.specs.len()
    }

    /// Enrolls the PUF on `board` at operating point `env`:
    /// calibrates every pair, runs selection, and applies the
    /// reliability threshold.
    pub fn enroll<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &Board,
        tech: &Technology,
        env: Environment,
        opts: &EnrollOptions,
    ) -> Enrollment {
        let pairs = self
            .specs
            .iter()
            .map(|spec| Self::enroll_pair(rng, spec, board, tech, env, opts))
            .collect();
        Enrollment {
            pairs,
            enrolled_at: env,
        }
    }

    /// Enrolls with per-pair RNG streams derived from `seed` via
    /// [`crate::fleet::split_seed`], instead of one shared RNG.
    ///
    /// Because pair `i` always draws from stream `split_seed(seed, i)`,
    /// the result is independent of evaluation order — this is the
    /// serial reference [`enroll_par`](Self::enroll_par) is bit-identical
    /// to, and what the fleet engine runs per board.
    pub fn enroll_seeded(
        &self,
        seed: u64,
        board: &Board,
        tech: &Technology,
        env: Environment,
        opts: &EnrollOptions,
    ) -> Enrollment {
        let mut arena = MeasureArena::new();
        self.enroll_seeded_in(seed, board, tech, env, opts, &mut arena)
    }

    /// [`enroll_seeded`](Self::enroll_seeded) against a caller-owned
    /// [`MeasureArena`]: the whole board's rings are laid out as one
    /// structure-of-arrays block (pair `i`'s top ring at arena row
    /// `2i`, bottom at `2i + 1`), all `n + 2` calibration
    /// configurations are derived in one vectorizable sweep, and the
    /// per-pair loop calibrates from arena views with zero per-pair
    /// allocation.
    ///
    /// Fleet workers pass one arena per worker and enroll board after
    /// board into it; [`MeasureArena::begin_block`] fully resets the
    /// block, so repeated enrollments of one board through one arena
    /// are bit-identical (no cross-board state). The result is
    /// bit-identical to [`enroll_seeded`](Self::enroll_seeded) — the
    /// sweep folds stage contributions and draws probe noise in exactly
    /// the per-ring kernel's order.
    ///
    /// Floorplans whose pairs disagree on stage count cannot share one
    /// block; they fall back to the per-ring kernel (same bits).
    pub fn enroll_seeded_in(
        &self,
        seed: u64,
        board: &Board,
        tech: &Technology,
        env: Environment,
        opts: &EnrollOptions,
        arena: &mut MeasureArena,
    ) -> Enrollment {
        let extra = opts.extra_corners(env);
        let stages = self.specs.first().map_or(0, PairSpec::stages);
        if stages == 0 || self.specs.iter().any(|spec| spec.stages() != stages) {
            let pairs = self
                .specs
                .iter()
                .enumerate()
                .map(|(i, spec)| {
                    if extra.is_empty() {
                        let mut rng = StdRng::seed_from_u64(split_seed(seed, i as u64));
                        Self::enroll_pair(&mut rng, spec, board, tech, env, opts)
                    } else {
                        Self::enroll_pair_multi(seed, i, spec, board, tech, env, &extra, opts)
                    }
                })
                .collect();
            return Enrollment {
                pairs,
                enrolled_at: env,
            };
        }
        if !extra.is_empty() {
            return self.enroll_multi_corner_in(seed, board, tech, env, &extra, opts, arena);
        }
        arena.begin_block(2 * self.specs.len(), stages);
        for (i, spec) in self.specs.iter().enumerate() {
            let pair = spec.bind(board);
            pair.top().stage_delays_into(env, tech, arena, 2 * i);
            pair.bottom().stage_delays_into(env, tech, arena, 2 * i + 1);
        }
        let sweep = arena.sweep();
        let pairs = self
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let _pair_span = telemetry::span("enroll.pair");
                let mut rng = StdRng::seed_from_u64(split_seed(seed, i as u64));
                let cal_top = calibrate_from_sweep(&mut rng, &sweep.ring(2 * i), &opts.probe);
                let cal_bottom =
                    calibrate_from_sweep(&mut rng, &sweep.ring(2 * i + 1), &opts.probe);
                Self::select_pair(spec, &cal_top, &cal_bottom, opts)
            })
            .collect();
        Enrollment {
            pairs,
            enrolled_at: env,
        }
    }

    /// The multi-corner arena path of
    /// [`enroll_seeded_in`](Self::enroll_seeded_in): one
    /// structure-of-arrays block *per corner* (corner-outermost, so a
    /// single arena serves every corner sequentially), then per-pair
    /// min-margin-across-corners selection over the collected
    /// calibrations. Corner 0 is the enrollment environment on the
    /// legacy per-pair RNG stream; corner `c ≥ 1` draws from the
    /// independent [`corner_stream`] family, so the corner loop order
    /// cannot perturb any draw — which keeps this bit-identical to the
    /// per-ring kernel in [`enroll_pair_multi`](Self::enroll_pair_multi)
    /// and hence to [`enroll_par`](Self::enroll_par).
    #[allow(clippy::too_many_arguments)]
    fn enroll_multi_corner_in(
        &self,
        seed: u64,
        board: &Board,
        tech: &Technology,
        env: Environment,
        extra: &[Environment],
        opts: &EnrollOptions,
        arena: &mut MeasureArena,
    ) -> Enrollment {
        let stages = self.specs[0].stages();
        let n_pairs = self.specs.len();
        let corners: Vec<Environment> = std::iter::once(env).chain(extra.iter().copied()).collect();
        let mut cals: Vec<Vec<(Calibration, Calibration)>> = Vec::with_capacity(corners.len());
        for (c, &corner_env) in corners.iter().enumerate() {
            arena.begin_block(2 * n_pairs, stages);
            for (i, spec) in self.specs.iter().enumerate() {
                let pair = spec.bind(board);
                pair.top().stage_delays_into(corner_env, tech, arena, 2 * i);
                pair.bottom()
                    .stage_delays_into(corner_env, tech, arena, 2 * i + 1);
            }
            let sweep = arena.sweep();
            let mut per_pair = Vec::with_capacity(n_pairs);
            for i in 0..n_pairs {
                let mut rng = StdRng::seed_from_u64(corner_stream(seed, i as u64, c));
                let top = calibrate_from_sweep(&mut rng, &sweep.ring(2 * i), &opts.probe);
                let bottom = calibrate_from_sweep(&mut rng, &sweep.ring(2 * i + 1), &opts.probe);
                per_pair.push((top, bottom));
            }
            cals.push(per_pair);
        }
        let pairs = self
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let _pair_span = telemetry::span("enroll.pair");
                let pair_cals: Vec<(&Calibration, &Calibration)> =
                    cals.iter().map(|c| (&c[i].0, &c[i].1)).collect();
                Self::select_pair_multi(spec, &pair_cals, opts)
            })
            .collect();
        Enrollment {
            pairs,
            enrolled_at: env,
        }
    }

    /// Like [`enroll_seeded`](Self::enroll_seeded) but fans the per-pair
    /// calibration/selection work out over `threads` workers.
    /// Bit-identical to the serial form for the same `seed`.
    pub fn enroll_par(
        &self,
        seed: u64,
        board: &Board,
        tech: &Technology,
        env: Environment,
        opts: &EnrollOptions,
        threads: usize,
    ) -> Enrollment {
        let extra = opts.extra_corners(env);
        let pairs = parallel_map_indexed(self.specs.len(), threads, |i| {
            if extra.is_empty() {
                let mut rng = StdRng::seed_from_u64(split_seed(seed, i as u64));
                Self::enroll_pair(&mut rng, &self.specs[i], board, tech, env, opts)
            } else {
                Self::enroll_pair_multi(seed, i, &self.specs[i], board, tech, env, &extra, opts)
            }
        });
        Enrollment {
            pairs,
            enrolled_at: env,
        }
    }

    /// Calibrates, selects, and thresholds one ring pair.
    ///
    /// With telemetry enabled, calibration and selection are timed
    /// under an `enroll.pair` span (selection alone under
    /// `enroll.select`), and the `enroll.pairs.case1` /
    /// `enroll.pairs.case2`, `enroll.excluded.*`, and
    /// `enroll.degenerate` counters track what happened to the pair.
    fn enroll_pair<R: Rng + ?Sized>(
        rng: &mut R,
        spec: &PairSpec,
        board: &Board,
        tech: &Technology,
        env: Environment,
        opts: &EnrollOptions,
    ) -> Option<EnrolledPair> {
        let _pair_span = telemetry::span("enroll.pair");
        let pair = spec.bind(board);
        let cal_top = calibrate(rng, pair.top(), &opts.probe, env, tech);
        let cal_bottom = calibrate(rng, pair.bottom(), &opts.probe, env, tech);
        let extra = opts.extra_corners(env);
        if extra.is_empty() {
            return Self::select_pair(spec, &cal_top, &cal_bottom, opts);
        }
        // Shared-RNG multi-corner: extra corners draw sequentially from
        // the caller's RNG (this path has no parallel counterpart to
        // stay bit-identical to).
        let mut cals = vec![(cal_top, cal_bottom)];
        for corner_env in extra {
            let top = calibrate(rng, pair.top(), &opts.probe, corner_env, tech);
            let bottom = calibrate(rng, pair.bottom(), &opts.probe, corner_env, tech);
            cals.push((top, bottom));
        }
        let refs: Vec<(&Calibration, &Calibration)> = cals.iter().map(|(t, b)| (t, b)).collect();
        Self::select_pair_multi(spec, &refs, opts)
    }

    /// Per-ring multi-corner kernel: calibrates pair `i` at the
    /// enrollment environment plus every extra corner, each corner on
    /// its own [`corner_stream`] RNG stream, then runs
    /// min-margin-across-corners selection. Bit-identical to the arena
    /// path in [`enroll_multi_corner_in`](Self::enroll_multi_corner_in)
    /// for the same seed, which is what lets
    /// [`enroll_par`](Self::enroll_par) fan pairs out across workers.
    #[allow(clippy::too_many_arguments)]
    fn enroll_pair_multi(
        seed: u64,
        i: usize,
        spec: &PairSpec,
        board: &Board,
        tech: &Technology,
        env: Environment,
        extra: &[Environment],
        opts: &EnrollOptions,
    ) -> Option<EnrolledPair> {
        let _pair_span = telemetry::span("enroll.pair");
        let pair = spec.bind(board);
        let mut cals: Vec<(Calibration, Calibration)> = Vec::with_capacity(1 + extra.len());
        for (c, &corner_env) in std::iter::once(&env).chain(extra).enumerate() {
            let mut rng = StdRng::seed_from_u64(corner_stream(seed, i as u64, c));
            let top = calibrate(&mut rng, pair.top(), &opts.probe, corner_env, tech);
            let bottom = calibrate(&mut rng, pair.bottom(), &opts.probe, corner_env, tech);
            cals.push((top, bottom));
        }
        let refs: Vec<(&Calibration, &Calibration)> = cals.iter().map(|(t, b)| (t, b)).collect();
        Self::select_pair_multi(spec, &refs, opts)
    }

    /// The post-calibration half of [`Self::enroll_pair`]: plausibility
    /// screen, §III.D selection, and margin thresholding. Shared with
    /// the fault-tolerant path in [`crate::robust`], which produces its
    /// calibrations through retry/readback instead of raw measurement
    /// but must select and threshold identically.
    pub(crate) fn select_pair(
        spec: &PairSpec,
        cal_top: &Calibration,
        cal_bottom: &Calibration,
        opts: &EnrollOptions,
    ) -> Option<EnrolledPair> {
        if let Some((lo, hi)) = opts.plausible_ddiff_ps {
            let suspicious = cal_top
                .ddiffs_ps()
                .iter()
                .chain(cal_bottom.ddiffs_ps())
                .any(|&d| !(lo..=hi).contains(&d));
            if suspicious {
                telemetry::counter("enroll.excluded.implausible", 1);
                return None;
            }
        }
        let offset = cal_top.bypass_ps() - cal_bottom.bypass_ps();
        let select_span = telemetry::span("enroll.select");
        let (top_config, bottom_config, margin, bit, degenerate) = match opts.mode {
            SelectionMode::Case1 => {
                let s = case1_with_offset(
                    cal_top.ddiffs_ps(),
                    cal_bottom.ddiffs_ps(),
                    offset,
                    opts.parity,
                );
                telemetry::counter("enroll.pairs.case1", 1);
                (
                    s.config().clone(),
                    s.config().clone(),
                    s.margin(),
                    s.bit(),
                    s.is_degenerate(),
                )
            }
            SelectionMode::Case2 => {
                let s = case2_with_offset(
                    cal_top.ddiffs_ps(),
                    cal_bottom.ddiffs_ps(),
                    offset,
                    opts.parity,
                );
                telemetry::counter("enroll.pairs.case2", 1);
                (
                    s.top().clone(),
                    s.bottom().clone(),
                    s.margin(),
                    s.bit(),
                    s.is_degenerate(),
                )
            }
        };
        drop(select_span);
        if degenerate {
            // A zero-margin pair carries no silicon signature: its bit
            // is a selection-convention artifact, not entropy. Surface
            // it so fleet statistics can discount the bit.
            telemetry::counter("enroll.degenerate", 1);
        }
        if margin < opts.threshold_ps {
            telemetry::counter("enroll.excluded.threshold", 1);
            None
        } else {
            Some(EnrolledPair {
                spec: spec.clone(),
                top_config,
                bottom_config,
                expected_bit: bit,
                margin_ps: margin,
            })
        }
    }

    /// Multi-corner counterpart of [`Self::select_pair`]: `cals[c]`
    /// holds the pair's (top, bottom) calibrations at corner `c` of the
    /// enrollment corner list. The plausibility screen applies at every
    /// corner, the §III.D solvers are replaced by their
    /// min-margin-across-corners forms, and — unlike the single-corner
    /// path, where a degenerate pair is merely flagged — a pair that is
    /// degenerate at *any* corner is excluded outright (§III.C): its
    /// bit would flip with the environment. With a single corner this
    /// defers to [`Self::select_pair`] exactly.
    pub(crate) fn select_pair_multi(
        spec: &PairSpec,
        cals: &[(&Calibration, &Calibration)],
        opts: &EnrollOptions,
    ) -> Option<EnrolledPair> {
        assert!(!cals.is_empty(), "selection needs at least one corner");
        if cals.len() == 1 {
            return Self::select_pair(spec, cals[0].0, cals[0].1, opts);
        }
        if let Some((lo, hi)) = opts.plausible_ddiff_ps {
            let suspicious = cals.iter().any(|(t, b)| {
                t.ddiffs_ps()
                    .iter()
                    .chain(b.ddiffs_ps())
                    .any(|&d| !(lo..=hi).contains(&d))
            });
            if suspicious {
                telemetry::counter("enroll.excluded.implausible", 1);
                return None;
            }
        }
        let corner_delays: Vec<CornerDelays<'_>> = cals
            .iter()
            .map(|(t, b)| CornerDelays {
                alpha: t.ddiffs_ps(),
                beta: b.ddiffs_ps(),
                offset_ps: t.bypass_ps() - b.bypass_ps(),
            })
            .collect();
        let select_span = telemetry::span("enroll.select");
        let (top_config, bottom_config, margin, bit, degenerate) = match opts.mode {
            SelectionMode::Case1 => {
                let s = case1_multi_corner(&corner_delays, opts.parity);
                telemetry::counter("enroll.pairs.case1", 1);
                (
                    s.config().clone(),
                    s.config().clone(),
                    s.margin(),
                    s.bit(),
                    s.is_degenerate(),
                )
            }
            SelectionMode::Case2 => {
                let s = case2_multi_corner(&corner_delays, opts.parity);
                telemetry::counter("enroll.pairs.case2", 1);
                (
                    s.top().clone(),
                    s.bottom().clone(),
                    s.margin(),
                    s.bit(),
                    s.is_degenerate(),
                )
            }
        };
        drop(select_span);
        if degenerate {
            telemetry::counter("enroll.degenerate", 1);
            telemetry::counter("enroll.excluded.corner_degenerate", 1);
            return None;
        }
        if margin < opts.threshold_ps {
            telemetry::counter("enroll.excluded.threshold", 1);
            None
        } else {
            Some(EnrolledPair {
                spec: spec.clone(),
                top_config,
                bottom_config,
                expected_bit: bit,
                margin_ps: margin,
            })
        }
    }
}

/// One enrolled ring pair: its configurations, expected bit, and margin.
#[derive(Debug, Clone, PartialEq)]
pub struct EnrolledPair {
    spec: PairSpec,
    top_config: ConfigVector,
    bottom_config: ConfigVector,
    expected_bit: bool,
    margin_ps: f64,
}

impl EnrolledPair {
    /// Reassembles a pair record from parsed parts (used by
    /// [`crate::persist`]).
    pub(crate) fn from_parts(
        spec: PairSpec,
        top_config: ConfigVector,
        bottom_config: ConfigVector,
        expected_bit: bool,
        margin_ps: f64,
    ) -> Self {
        Self {
            spec,
            top_config,
            bottom_config,
            expected_bit,
            margin_ps,
        }
    }

    /// The floorplan entry this enrollment configures.
    pub fn spec(&self) -> &PairSpec {
        &self.spec
    }

    /// Configuration applied to the top ring.
    pub fn top_config(&self) -> &ConfigVector {
        &self.top_config
    }

    /// Configuration applied to the bottom ring.
    pub fn bottom_config(&self) -> &ConfigVector {
        &self.bottom_config
    }

    /// The bit recorded at enrollment (`true` = top ring slower).
    pub fn expected_bit(&self) -> bool {
        self.expected_bit
    }

    /// The selection margin achieved at enrollment, picoseconds.
    pub fn margin_ps(&self) -> f64 {
        self.margin_ps
    }
}

/// An enrolled PUF: per-pair configurations ready to generate responses.
#[derive(Debug, Clone, PartialEq)]
pub struct Enrollment {
    pairs: Vec<Option<EnrolledPair>>,
    enrolled_at: Environment,
}

impl Enrollment {
    /// Reassembles an enrollment from parsed parts (used by
    /// [`crate::persist`]).
    pub(crate) fn from_parts(pairs: Vec<Option<EnrolledPair>>, enrolled_at: Environment) -> Self {
        Self { pairs, enrolled_at }
    }

    /// Per-pair enrollment records; `None` marks pairs excluded by the
    /// reliability threshold.
    pub fn pairs(&self) -> &[Option<EnrolledPair>] {
        &self.pairs
    }

    /// The operating point enrollment was performed at.
    pub fn enrolled_at(&self) -> Environment {
        self.enrolled_at
    }

    /// Number of pairs producing bits (after threshold exclusion).
    pub fn bit_count(&self) -> usize {
        self.pairs.iter().flatten().count()
    }

    /// The bits recorded at enrollment, in pair order (excluded pairs
    /// skipped).
    pub fn expected_bits(&self) -> BitVec {
        self.pairs
            .iter()
            .flatten()
            .map(EnrolledPair::expected_bit)
            .collect()
    }

    /// Enrollment margins in pair order (excluded pairs skipped),
    /// picoseconds.
    pub fn margins_ps(&self) -> Vec<f64> {
        self.pairs
            .iter()
            .flatten()
            .map(EnrolledPair::margin_ps)
            .collect()
    }

    /// Resolves every enrolled pair's ring views on `board` once,
    /// returning a context that can be read out repeatedly — e.g. across
    /// several operating-point corners or majority votes — without
    /// re-binding per read. Binding draws no randomness, so responses
    /// through the bound context are byte-identical to the unbound
    /// methods.
    ///
    /// # Panics
    ///
    /// Panics if a spec references units outside `board` (enrolling and
    /// responding must use the same board).
    pub fn bind<'a, 'b>(&'b self, board: &'a Board) -> BoundEnrollment<'a, 'b> {
        BoundEnrollment {
            pairs: self
                .pairs
                .iter()
                .flatten()
                .map(|p| (p, p.spec.bind(board)))
                .collect(),
        }
    }

    /// Generates a majority-voted response: reads the PUF `votes` times
    /// at `env` and takes the per-bit majority — the cheap first line of
    /// defence against measurement noise before any error correction.
    ///
    /// # Panics
    ///
    /// Panics if `votes` is zero or even, or if a spec references units
    /// outside `board`.
    pub fn respond_majority<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &Board,
        tech: &Technology,
        env: Environment,
        probe: &DelayProbe,
        votes: usize,
    ) -> BitVec {
        self.bind(board)
            .respond_majority(rng, tech, env, probe, votes)
    }

    /// Generates a response at operating point `env` by measuring every
    /// configured ring pair with `probe`. Bit = `true` when the top ring
    /// measures slower.
    ///
    /// # Panics
    ///
    /// Panics if a spec references units outside `board` (enrolling and
    /// responding must use the same board).
    pub fn respond<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &Board,
        tech: &Technology,
        env: Environment,
        probe: &DelayProbe,
    ) -> BitVec {
        self.bind(board).respond(rng, tech, env, probe)
    }
}

/// An [`Enrollment`] with its ring views resolved on a specific board —
/// the read-out context the fleet engine binds once per board and reuses
/// across every corner of its environment sweep.
#[derive(Debug, Clone)]
pub struct BoundEnrollment<'a, 'b> {
    pairs: Vec<(&'b EnrolledPair, RoPair<'a>)>,
}

impl<'a, 'b> BoundEnrollment<'a, 'b> {
    /// The enrolled pairs (threshold-excluded pairs already skipped),
    /// each with its bound ring views.
    pub(crate) fn pairs(&self) -> &[(&'b EnrolledPair, RoPair<'a>)] {
        &self.pairs
    }

    /// See [`Enrollment::respond`]; measurements and noise draws are
    /// identical, only the per-read ring binding is amortized.
    pub fn respond<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        tech: &Technology,
        env: Environment,
        probe: &DelayProbe,
    ) -> BitVec {
        let scale = tech.delay_scale(env);
        self.pairs
            .iter()
            .map(|(p, pair)| {
                let d_top = probe.measure_ps(
                    rng,
                    pair.top()
                        .ring_delay_ps_scaled(&p.top_config, scale, env, tech),
                );
                let d_bottom = probe.measure_ps(
                    rng,
                    pair.bottom()
                        .ring_delay_ps_scaled(&p.bottom_config, scale, env, tech),
                );
                d_top > d_bottom
            })
            .collect()
    }

    /// See [`Enrollment::respond_majority`].
    ///
    /// # Panics
    ///
    /// Panics if `votes` is zero or even.
    pub fn respond_majority<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        tech: &Technology,
        env: Environment,
        probe: &DelayProbe,
        votes: usize,
    ) -> BitVec {
        assert!(
            votes % 2 == 1,
            "majority voting needs an odd vote count, got {votes}"
        );
        let reads: Vec<BitVec> = (0..votes)
            .map(|_| self.respond(rng, tech, env, probe))
            .collect();
        (0..reads[0].len())
            .map(|i| {
                let ones = reads.iter().filter(|r| r.get(i).expect("in range")).count();
                ones * 2 > votes
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_silicon::board::BoardId;
    use ropuf_silicon::SiliconSim;

    fn setup(units: usize) -> (Board, Technology, StdRng) {
        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(123);
        let board = sim.grow_board_with_id(&mut rng, BoardId(0), units, 16);
        (board, *sim.technology(), rng)
    }

    #[test]
    fn tiled_floorplan_counts() {
        let puf = ConfigurableRoPuf::tiled(64, 4);
        assert_eq!(puf.pair_count(), 8);
        assert_eq!(puf.specs()[1].top(), &[8, 9, 10, 11]);
        assert_eq!(puf.specs()[1].bottom(), &[12, 13, 14, 15]);
        // Leftover units are unused.
        assert_eq!(ConfigurableRoPuf::tiled(65, 4).pair_count(), 8);
    }

    #[test]
    fn interleaved_floorplan_alternates_units() {
        let puf = ConfigurableRoPuf::tiled_interleaved(24, 3);
        assert_eq!(puf.pair_count(), 4);
        assert_eq!(puf.specs()[0].top(), &[0, 2, 4]);
        assert_eq!(puf.specs()[0].bottom(), &[1, 3, 5]);
        assert_eq!(puf.specs()[1].top(), &[6, 8, 10]);
    }

    #[test]
    fn interleaving_decorrelates_fleet_bits() {
        // With blocked pairs, the per-board systematic gradient pushes
        // all pairs of a board the same way, inflating the inter-chip HD
        // spread far beyond binomial; interleaved pairs cancel it.
        use ropuf_metrics_free::hd_sigma;
        mod ropuf_metrics_free {
            use ropuf_num::bits::BitVec;
            pub fn hd_sigma(responses: &[BitVec]) -> f64 {
                let mut hds = Vec::new();
                for i in 0..responses.len() {
                    for j in i + 1..responses.len() {
                        hds.push(responses[i].hamming_distance(&responses[j]).unwrap() as f64);
                    }
                }
                let m = hds.iter().sum::<f64>() / hds.len() as f64;
                (hds.iter().map(|h| (h - m) * (h - m)).sum::<f64>() / (hds.len() - 1) as f64).sqrt()
            }
        }

        let sim = ropuf_silicon::SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(31);
        let boards: Vec<Board> = (0..24)
            .map(|i| sim.grow_board_with_id(&mut rng, BoardId(i), 320, 16))
            .collect();
        let opts = EnrollOptions {
            probe: DelayProbe::noiseless(),
            ..EnrollOptions::default()
        };
        let collect = |puf: &ConfigurableRoPuf, rng: &mut StdRng| {
            boards
                .iter()
                .map(|b| {
                    puf.enroll(rng, b, sim.technology(), Environment::nominal(), &opts)
                        .expected_bits()
                })
                .collect::<Vec<_>>()
        };
        let blocked = collect(&ConfigurableRoPuf::tiled(320, 5), &mut rng);
        let interleaved = collect(&ConfigurableRoPuf::tiled_interleaved(320, 5), &mut rng);
        let s_blocked = hd_sigma(&blocked);
        let s_inter = hd_sigma(&interleaved);
        // 32 bits: binomial sigma = sqrt(32)/2 = 2.83.
        assert!(s_inter < 5.0, "interleaved sigma {s_inter}");
        assert!(
            s_blocked > s_inter,
            "blocked {s_blocked} !> interleaved {s_inter}"
        );
    }

    #[test]
    fn enrollment_produces_bits_and_margins() {
        let (board, tech, mut rng) = setup(80);
        let puf = ConfigurableRoPuf::tiled(80, 5);
        let enrollment = puf.enroll(
            &mut rng,
            &board,
            &tech,
            Environment::nominal(),
            &EnrollOptions::default(),
        );
        assert_eq!(enrollment.bit_count(), 8);
        assert_eq!(enrollment.expected_bits().len(), 8);
        assert!(enrollment.margins_ps().iter().all(|&m| m >= 0.0));
    }

    #[test]
    fn response_at_enrollment_point_matches_expected_bits() {
        let (board, tech, mut rng) = setup(96);
        let puf = ConfigurableRoPuf::tiled(96, 6);
        let env = Environment::nominal();
        let opts = EnrollOptions {
            probe: DelayProbe::noiseless(),
            ..EnrollOptions::default()
        };
        let enrollment = puf.enroll(&mut rng, &board, &tech, env, &opts);
        let response = enrollment.respond(&mut rng, &board, &tech, env, &DelayProbe::noiseless());
        assert_eq!(response, enrollment.expected_bits());
    }

    #[test]
    fn case1_configs_are_shared() {
        let (board, tech, mut rng) = setup(60);
        let puf = ConfigurableRoPuf::tiled(60, 5);
        let opts = EnrollOptions {
            mode: SelectionMode::Case1,
            ..EnrollOptions::default()
        };
        let enrollment = puf.enroll(&mut rng, &board, &tech, Environment::nominal(), &opts);
        for pair in enrollment.pairs().iter().flatten() {
            assert_eq!(pair.top_config(), pair.bottom_config());
        }
    }

    #[test]
    fn case2_counts_are_equal() {
        let (board, tech, mut rng) = setup(60);
        let puf = ConfigurableRoPuf::tiled(60, 5);
        let enrollment = puf.enroll(
            &mut rng,
            &board,
            &tech,
            Environment::nominal(),
            &EnrollOptions::default(),
        );
        for pair in enrollment.pairs().iter().flatten() {
            assert_eq!(
                pair.top_config().selected_count(),
                pair.bottom_config().selected_count()
            );
        }
    }

    #[test]
    fn force_odd_configs_oscillate() {
        let (board, tech, mut rng) = setup(60);
        let puf = ConfigurableRoPuf::tiled(60, 5);
        let enrollment = puf.enroll(
            &mut rng,
            &board,
            &tech,
            Environment::nominal(),
            &EnrollOptions::default(),
        );
        for pair in enrollment.pairs().iter().flatten() {
            assert!(pair.top_config().oscillates());
            assert!(pair.bottom_config().oscillates());
        }
    }

    #[test]
    fn threshold_excludes_weak_pairs() {
        let (board, tech, mut rng) = setup(120);
        let puf = ConfigurableRoPuf::tiled(120, 5);
        let env = Environment::nominal();
        // Noiseless calibration makes margins identical across enrolls,
        // so a threshold derived from one run provably bites in the next.
        let base = EnrollOptions {
            probe: DelayProbe::noiseless(),
            ..EnrollOptions::default()
        };
        let all = puf.enroll(&mut rng, &board, &tech, env, &base);
        let strict = puf.enroll(
            &mut rng,
            &board,
            &tech,
            env,
            &EnrollOptions {
                threshold_ps: f64::MAX,
                ..base
            },
        );
        assert_eq!(all.bit_count(), 12);
        assert_eq!(strict.bit_count(), 0);
        let min_margin = all
            .margins_ps()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let mid = puf.enroll(
            &mut rng,
            &board,
            &tech,
            env,
            &EnrollOptions {
                threshold_ps: min_margin + 0.01,
                ..base
            },
        );
        assert!(mid.bit_count() < all.bit_count());
    }

    #[test]
    fn case2_margins_dominate_case1() {
        let (board, tech, _) = setup(150);
        let puf = ConfigurableRoPuf::tiled(150, 5);
        let env = Environment::nominal();
        let opts1 = EnrollOptions {
            mode: SelectionMode::Case1,
            parity: ParityPolicy::Ignore,
            probe: DelayProbe::noiseless(),
            ..EnrollOptions::default()
        };
        let opts2 = EnrollOptions {
            mode: SelectionMode::Case2,
            parity: ParityPolicy::Ignore,
            probe: DelayProbe::noiseless(),
            ..EnrollOptions::default()
        };
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let e1 = puf.enroll(&mut rng1, &board, &tech, env, &opts1);
        let e2 = puf.enroll(&mut rng2, &board, &tech, env, &opts2);
        for (m1, m2) in e1.margins_ps().iter().zip(e2.margins_ps()) {
            assert!(m2 >= m1 - 1e-9, "case2 {m2} < case1 {m1}");
        }
    }

    #[test]
    fn majority_vote_matches_single_reads_when_clean() {
        let (board, tech, mut rng) = setup(60);
        let puf = ConfigurableRoPuf::tiled(60, 5);
        let env = Environment::nominal();
        let e = puf.enroll(&mut rng, &board, &tech, env, &EnrollOptions::default());
        let probe = DelayProbe::noiseless();
        let single = e.respond(&mut rng, &board, &tech, env, &probe);
        let voted = e.respond_majority(&mut rng, &board, &tech, env, &probe, 5);
        assert_eq!(single, voted);
    }

    #[test]
    fn majority_vote_suppresses_noise() {
        let (board, tech, mut rng) = setup(60);
        let puf = ConfigurableRoPuf::tiled(60, 3); // small margins
        let env = Environment::nominal();
        let e = puf.enroll(&mut rng, &board, &tech, env, &EnrollOptions::default());
        // A brutally noisy probe: single reads flip bits, 9-vote
        // majorities flip (strictly) fewer on aggregate.
        let noisy = DelayProbe::new(8.0, 1);
        let truth = e.expected_bits();
        let count_errors = |r: &ropuf_num::bits::BitVec| r.hamming_distance(&truth).unwrap();
        let mut single_errors = 0;
        let mut voted_errors = 0;
        for _ in 0..40 {
            single_errors += count_errors(&e.respond(&mut rng, &board, &tech, env, &noisy));
            voted_errors +=
                count_errors(&e.respond_majority(&mut rng, &board, &tech, env, &noisy, 9));
        }
        assert!(
            voted_errors < single_errors,
            "voted {voted_errors} !< single {single_errors}"
        );
    }

    #[test]
    #[should_panic(expected = "odd vote count")]
    fn even_votes_panic() {
        let (board, tech, mut rng) = setup(60);
        let puf = ConfigurableRoPuf::tiled(60, 5);
        let e = puf.enroll(
            &mut rng,
            &board,
            &tech,
            Environment::nominal(),
            &EnrollOptions::default(),
        );
        let _ = e.respond_majority(
            &mut rng,
            &board,
            &tech,
            Environment::nominal(),
            &DelayProbe::noiseless(),
            4,
        );
    }

    #[test]
    fn responses_stay_stable_near_enrollment_conditions() {
        let (board, tech, mut rng) = setup(140);
        let puf = ConfigurableRoPuf::tiled(140, 7);
        let env = Environment::nominal();
        let enrollment = puf.enroll(&mut rng, &board, &tech, env, &EnrollOptions::default());
        let probe = DelayProbe::new(0.25, 1);
        for _ in 0..20 {
            let r = enrollment.respond(&mut rng, &board, &tech, env, &probe);
            assert_eq!(r, enrollment.expected_bits());
        }
    }

    #[test]
    fn builder_mirrors_struct_literal() {
        let built = EnrollOptions::builder()
            .selection(SelectionMode::Case1)
            .parity(ParityPolicy::Ignore)
            .threshold_ps(1.5)
            .plausible_ddiff_ps(50.0, 200.0)
            .probe(DelayProbe::noiseless())
            .corners(CornerSet::worst_case())
            .build();
        let literal = EnrollOptions {
            mode: SelectionMode::Case1,
            parity: ParityPolicy::Ignore,
            threshold_ps: 1.5,
            plausible_ddiff_ps: Some((50.0, 200.0)),
            probe: DelayProbe::noiseless(),
            corners: CornerSet::worst_case(),
        };
        assert_eq!(built, literal);
        // Untouched fields keep the defaults.
        assert_eq!(EnrollOptions::builder().build(), EnrollOptions::default());
    }

    #[test]
    fn builder_rejects_inconsistent_options() {
        use crate::error::Error;
        assert!(matches!(
            EnrollOptions::builder().threshold_ps(-1.0).try_build(),
            Err(Error::Enrollment(_))
        ));
        assert!(matches!(
            EnrollOptions::builder()
                .plausible_ddiff_ps(5.0, 1.0)
                .try_build(),
            Err(Error::Enrollment(_))
        ));
        assert!(matches!(
            EnrollOptions::builder().threshold_ps(f64::NAN).try_build(),
            Err(Error::Enrollment(_))
        ));
    }

    #[test]
    fn seeded_and_parallel_enrolls_are_bit_identical() {
        let (board, tech, _) = setup(120);
        let puf = ConfigurableRoPuf::tiled_interleaved(120, 5);
        let env = Environment::nominal();
        let opts = EnrollOptions::default();
        let serial = puf.enroll_seeded(42, &board, &tech, env, &opts);
        for threads in [1, 2, 4, 8] {
            let par = puf.enroll_par(42, &board, &tech, env, &opts, threads);
            assert_eq!(par, serial, "threads = {threads}");
        }
        // A different seed produces different calibration noise draws,
        // but the same silicon — bits agree wherever margins are wide.
        let other = puf.enroll_seeded(43, &board, &tech, env, &opts);
        assert_eq!(other.bit_count(), serial.bit_count());
    }

    #[test]
    fn nominal_only_corner_set_is_bit_identical_to_default_enrollment() {
        // corners = {env} deduplicates to nothing extra, which must take
        // the exact legacy code path — the byte-identity guarantee.
        let (board, tech, _) = setup(120);
        let puf = ConfigurableRoPuf::tiled_interleaved(120, 5);
        let env = Environment::nominal();
        let nominal_only = EnrollOptions {
            corners: CornerSet::try_from_slice(&[env]).unwrap(),
            ..EnrollOptions::default()
        };
        let baseline = puf.enroll_seeded(42, &board, &tech, env, &EnrollOptions::default());
        assert_eq!(
            puf.enroll_seeded(42, &board, &tech, env, &nominal_only),
            baseline
        );
        assert_eq!(
            puf.enroll_par(42, &board, &tech, env, &nominal_only, 4),
            baseline
        );
    }

    #[test]
    fn multi_corner_serial_parallel_and_per_ring_paths_agree() {
        let (board, tech, _) = setup(120);
        let puf = ConfigurableRoPuf::tiled_interleaved(120, 5);
        let env = Environment::nominal();
        let opts = EnrollOptions {
            corners: CornerSet::worst_case(),
            ..EnrollOptions::default()
        };
        let serial = puf.enroll_seeded(42, &board, &tech, env, &opts);
        for threads in [1, 2, 4, 8] {
            let par = puf.enroll_par(42, &board, &tech, env, &opts, threads);
            assert_eq!(par, serial, "threads = {threads}");
        }
        assert!(serial.bit_count() > 0, "multi-corner enrolls some pairs");
    }

    #[test]
    fn multi_corner_margin_never_exceeds_nominal_margin() {
        // The worst-corner margin is a min over a set containing the
        // enrollment corner, so it cannot beat the nominal-only margin
        // of the same configuration — and the multi-corner pick holds
        // margin at every corner, trading nominal slack for it.
        let (board, tech, _) = setup(120);
        let puf = ConfigurableRoPuf::tiled_interleaved(120, 5);
        let env = Environment::nominal();
        let noiseless = EnrollOptions {
            probe: DelayProbe::noiseless(),
            ..EnrollOptions::default()
        };
        let multi = EnrollOptions {
            corners: CornerSet::worst_case(),
            ..noiseless
        };
        let nominal = puf.enroll_seeded(42, &board, &tech, env, &noiseless);
        let corner = puf.enroll_seeded(42, &board, &tech, env, &multi);
        for (a, b) in nominal.pairs().iter().zip(corner.pairs()) {
            if let (Some(a), Some(b)) = (a, b) {
                assert!(
                    b.margin_ps() <= a.margin_ps() + 1e-9,
                    "worst-corner margin {} beats nominal optimum {}",
                    b.margin_ps(),
                    a.margin_ps()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one ring pair")]
    fn empty_floorplan_panics() {
        let _ = ConfigurableRoPuf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn tiled_too_small_panics() {
        let _ = ConfigurableRoPuf::tiled(5, 3);
    }
}

#[cfg(test)]
mod defect_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_silicon::board::BoardId;
    use ropuf_silicon::{DefectModel, SiliconSim};

    #[test]
    fn screening_excludes_exactly_the_defective_pairs() {
        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(61);
        let clean = sim.grow_board_with_id(&mut rng, BoardId(0), 400, 20);
        let model = DefectModel {
            stuck_slow_rate: 0.02,
            stuck_fast_rate: 0.01,
            ..DefectModel::default()
        };
        let (board, defects) = model.inject(&mut rng, &clean);
        assert!(!defects.is_empty(), "expect defects at these rates");

        let stages = 5;
        let puf = ConfigurableRoPuf::tiled(400, stages);
        // Plausible band around the Spartan-3E nominal ddiff (~105 ps).
        let opts = EnrollOptions {
            plausible_ddiff_ps: Some((50.0, 200.0)),
            probe: DelayProbe::noiseless(),
            ..EnrollOptions::default()
        };
        let e = puf.enroll(
            &mut rng,
            &board,
            sim.technology(),
            Environment::nominal(),
            &opts,
        );

        let defective_units: std::collections::HashSet<usize> =
            defects.iter().map(|(i, _)| *i).collect();
        for (spec, enrolled) in puf.specs().iter().zip(e.pairs()) {
            let touches_defect = spec
                .top()
                .iter()
                .chain(spec.bottom())
                .any(|u| defective_units.contains(u));
            assert_eq!(
                enrolled.is_none(),
                touches_defect,
                "pair {spec:?}: exclusion must track defects exactly"
            );
        }
        // The surviving pairs still respond correctly.
        let r = e.respond(
            &mut rng,
            &board,
            sim.technology(),
            Environment::nominal(),
            &DelayProbe::noiseless(),
        );
        assert_eq!(r, e.expected_bits());
    }

    #[test]
    fn screening_disabled_keeps_every_pair() {
        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(62);
        let clean = sim.grow_board_with_id(&mut rng, BoardId(0), 200, 20);
        let (board, _) = DefectModel::default().inject(&mut rng, &clean);
        let puf = ConfigurableRoPuf::tiled(200, 5);
        let e = puf.enroll(
            &mut rng,
            &board,
            sim.technology(),
            Environment::nominal(),
            &EnrollOptions::default(),
        );
        assert_eq!(e.bit_count(), puf.pair_count());
    }
}
