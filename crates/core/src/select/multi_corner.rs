//! Min-margin-across-corners selection: §III.D extended over a V/T
//! corner set.
//!
//! The paper selects configuration vectors at a single operating point;
//! §IV.D then shows that the resulting margins shrink at voltage and
//! temperature corners, and that the smallest-margin pairs are the ones
//! that flip. Because per-device V/T sensitivities disperse, the stage
//! ordering — and hence the optimal selection — is *corner-dependent*:
//! the nominal optimum can sit on a knife edge at 0.98 V.
//!
//! These solvers maximize the **worst-corner margin** instead: for a
//! candidate selection with signed delay difference `D_c` at corner `c`,
//! the objective is `min_c |D_c|` when every corner agrees on the sign
//! of `D_c`, and `0` otherwise — a bit that changes polarity with the
//! environment is not a PUF bit, so sign-inconsistent selections are
//! *degenerate* and fall to the §III.C escape hatch.
//!
//! Exact optimization of the min-margin objective is no longer a sign
//! partition (it is NP-hard in general); the solvers here are
//! deterministic heuristics with a guarantee that matters in practice:
//! the candidate pool contains every per-corner §III.D optimum, so the
//! result is never worse *at its worst corner* than the best of the
//! single-corner optima, and a strict-improvement refinement pass then
//! climbs from there. With a single corner, each solver reduces exactly
//! to its §III.D counterpart, bit for bit.

use rand::Rng;
use ropuf_telemetry as telemetry;

use crate::config::{ConfigVector, ParityPolicy};
use crate::select::case1::extreme_subset;
use crate::select::case2::{extreme_prefix, select_extreme, Extreme};
use crate::select::{
    case1_with_offset, case2_with_offset, validate_inputs, PairSelection, Selection,
};

/// Per-corner inputs to a multi-corner selection: the §III.B calibrated
/// per-stage ddiffs of the two rings and the configuration-independent
/// bypass offset, all measured at one operating point.
#[derive(Debug, Clone, Copy)]
pub struct CornerDelays<'a> {
    /// Top-ring per-stage ddiffs at this corner, ps.
    pub alpha: &'a [f64],
    /// Bottom-ring per-stage ddiffs at this corner, ps.
    pub beta: &'a [f64],
    /// Configuration-independent delay offset `B_top − B_bottom`, ps.
    pub offset_ps: f64,
}

/// Worst-corner margin of a fixed selection whose signed delay
/// differences at the corners are `ds`: the minimum `|D_c|` when every
/// corner agrees on which ring is slower, `0.0` (degenerate) when any
/// corner ties or the corners disagree. The boolean is the enrolled bit
/// (`true` = top slower everywhere; `false` by convention when
/// degenerate).
pub(crate) fn consistent_min_margin(ds: &[f64]) -> (f64, bool) {
    if ds.iter().all(|&d| d > 0.0) {
        (ds.iter().fold(f64::INFINITY, |m, &d| m.min(d)), true)
    } else if ds.iter().all(|&d| d < 0.0) {
        (ds.iter().fold(f64::INFINITY, |m, &d| m.min(-d)), false)
    } else {
        (0.0, false)
    }
}

/// Validates corner inputs and returns the common stage count.
fn validate_corners(corners: &[CornerDelays<'_>]) -> usize {
    assert!(
        !corners.is_empty(),
        "multi-corner selection needs at least one corner"
    );
    let n = corners[0].alpha.len();
    for c in corners {
        validate_inputs(c.alpha, c.beta);
        assert_eq!(
            c.alpha.len(),
            n,
            "all corners must describe the same stages"
        );
        assert!(
            c.offset_ps.is_finite(),
            "offset must be finite, got {}",
            c.offset_ps
        );
    }
    n
}

/// Case-1 selection maximizing the worst-corner margin
/// `min_c |offset_c + Σ (α_c − β_c)·x|` over a shared configuration.
///
/// With one corner this is exactly [`case1_with_offset`]. With several,
/// the per-corner sign-class optima seed a deterministic
/// strict-improvement flip search on the min-margin objective.
///
/// # Panics
///
/// Panics if `corners` is empty, any corner's inputs are invalid, or
/// the corners disagree on the stage count.
pub fn case1_multi_corner(corners: &[CornerDelays<'_>], parity: ParityPolicy) -> Selection {
    let n = validate_corners(corners);
    if corners.len() == 1 {
        let c = &corners[0];
        return case1_with_offset(c.alpha, c.beta, c.offset_ps, parity);
    }
    let deltas: Vec<Vec<f64>> = corners
        .iter()
        .map(|c| c.alpha.iter().zip(c.beta).map(|(a, b)| a - b).collect())
        .collect();
    let eval = |flags: &[bool]| -> (f64, bool) {
        let ds: Vec<f64> = corners
            .iter()
            .zip(&deltas)
            .map(|(c, delta)| {
                c.offset_ps
                    + flags
                        .iter()
                        .zip(delta)
                        .filter_map(|(&on, d)| on.then_some(d))
                        .sum::<f64>()
            })
            .collect();
        consistent_min_margin(&ds)
    };

    // Candidate pool: both sign-class optima of every corner.
    let mut candidates: Vec<Vec<bool>> = Vec::new();
    for delta in &deltas {
        for maximize in [true, false] {
            let (set, _) = extreme_subset(delta, maximize, parity);
            let mut flags = vec![false; n];
            for &i in &set {
                flags[i] = true;
            }
            if !candidates.contains(&flags) {
                candidates.push(flags);
            }
        }
    }
    let mut best = candidates[0].clone();
    let (mut best_margin, mut best_bit) = eval(&best);
    for flags in &candidates[1..] {
        let (m, bit) = eval(flags);
        if m > best_margin {
            best = flags.clone();
            best_margin = m;
            best_bit = bit;
        }
    }

    // Strict-improvement refinement: single flips (pair flips under
    // ForceOdd) applied best-first until no move helps. Terminates
    // because the margin strictly increases over a finite config space.
    loop {
        let mut improved = false;
        let mut round_best = best.clone();
        let mut round_margin = best_margin;
        let mut round_bit = best_bit;
        let mut consider = |flags: Vec<bool>| {
            let (m, bit) = eval(&flags);
            if m > round_margin + 1e-15 {
                round_best = flags;
                round_margin = m;
                round_bit = bit;
            }
        };
        match parity {
            ParityPolicy::Ignore => {
                for i in 0..n {
                    let mut flags = best.clone();
                    flags[i] = !flags[i];
                    consider(flags);
                }
            }
            ParityPolicy::ForceOdd => {
                for i in 0..n {
                    for j in i + 1..n {
                        let mut flags = best.clone();
                        flags[i] = !flags[i];
                        flags[j] = !flags[j];
                        consider(flags);
                    }
                }
            }
        }
        if round_margin > best_margin + 1e-15 {
            best = round_best;
            best_margin = round_margin;
            best_bit = round_bit;
            improved = true;
        }
        if !improved {
            break;
        }
    }

    let selection = Selection::new(ConfigVector::from_flags(&best), best_margin, best_bit);
    if selection.is_degenerate() {
        telemetry::counter("select.multi.case1.degenerate", 1);
    }
    selection
}

/// Case-2 selection maximizing the worst-corner margin
/// `min_c |offset_c + Σ α_c x − Σ β_c y|` subject to `Σ x = Σ y`.
///
/// With one corner this is exactly [`case2_with_offset`]. With several,
/// both orientations of every corner's sorted-prefix optimum seed a
/// deterministic strict-improvement swap search (swaps preserve the
/// equal-count constraint and the parity of `k`).
///
/// # Panics
///
/// Panics if `corners` is empty, any corner's inputs are invalid, or
/// the corners disagree on the stage count.
pub fn case2_multi_corner(corners: &[CornerDelays<'_>], parity: ParityPolicy) -> PairSelection {
    let n = validate_corners(corners);
    if corners.len() == 1 {
        let c = &corners[0];
        return case2_with_offset(c.alpha, c.beta, c.offset_ps, parity);
    }
    let eval = |top: &[usize], bottom: &[usize]| -> (f64, bool) {
        let ds: Vec<f64> = corners
            .iter()
            .map(|c| {
                c.offset_ps + top.iter().map(|&i| c.alpha[i]).sum::<f64>()
                    - bottom.iter().map(|&i| c.beta[i]).sum::<f64>()
            })
            .collect();
        consistent_min_margin(&ds)
    };

    // Candidate pool: both orientations of every corner's §III.D optimum.
    let mut candidates: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
    for c in corners {
        let (k_fwd, _) = extreme_prefix(c.alpha, c.beta, c.offset_ps, parity);
        let fwd = (
            select_extreme(c.alpha, k_fwd, Extreme::Slowest),
            select_extreme(c.beta, k_fwd, Extreme::Fastest),
        );
        let (k_rev, _) = extreme_prefix(c.beta, c.alpha, -c.offset_ps, parity);
        let rev = (
            select_extreme(c.alpha, k_rev, Extreme::Fastest),
            select_extreme(c.beta, k_rev, Extreme::Slowest),
        );
        for cand in [fwd, rev] {
            if !candidates.contains(&cand) {
                candidates.push(cand);
            }
        }
    }
    let (mut best_top, mut best_bottom) = candidates[0].clone();
    let (mut best_margin, mut best_bit) = eval(&best_top, &best_bottom);
    for (top, bottom) in &candidates[1..] {
        let (m, bit) = eval(top, bottom);
        if m > best_margin {
            best_top = top.clone();
            best_bottom = bottom.clone();
            best_margin = m;
            best_bit = bit;
        }
    }

    // Strict-improvement refinement over count-preserving swaps in
    // either ring.
    loop {
        let mut round = (best_top.clone(), best_bottom.clone(), best_margin, best_bit);
        for ring in 0..2 {
            let current = if ring == 0 { &best_top } else { &best_bottom };
            for (pos, &out) in current.iter().enumerate() {
                for add in 0..n {
                    if current.contains(&add) {
                        continue;
                    }
                    let mut swapped = current.clone();
                    swapped[pos] = add;
                    swapped.sort_unstable();
                    let (top, bottom) = if ring == 0 {
                        (swapped, best_bottom.clone())
                    } else {
                        (best_top.clone(), swapped)
                    };
                    let (m, bit) = eval(&top, &bottom);
                    if m > round.2 + 1e-15 {
                        round = (top, bottom, m, bit);
                    }
                    let _ = out;
                }
            }
        }
        if round.2 > best_margin + 1e-15 {
            (best_top, best_bottom, best_margin, best_bit) = round;
        } else {
            break;
        }
    }

    let selection = PairSelection::new(
        ConfigVector::from_selected(n, &best_top),
        ConfigVector::from_selected(n, &best_bottom),
        best_margin,
        best_bit,
    );
    if selection.is_degenerate() {
        telemetry::counter("select.multi.case2.degenerate", 1);
    }
    selection
}

/// Case-1 multi-corner selection by restart hill climbing on the
/// worst-corner margin — the heuristic baseline the exact-seeded
/// [`case1_multi_corner`] is compared against in benches and tests.
///
/// # Panics
///
/// Panics if the corner inputs are invalid or `restarts == 0`.
pub fn case1_local_search_multi<R: Rng + ?Sized>(
    rng: &mut R,
    corners: &[CornerDelays<'_>],
    parity: ParityPolicy,
    restarts: usize,
) -> Selection {
    let n = validate_corners(corners);
    assert!(restarts > 0, "local search needs at least one restart");
    let deltas: Vec<Vec<f64>> = corners
        .iter()
        .map(|c| c.alpha.iter().zip(c.beta).map(|(a, b)| a - b).collect())
        .collect();
    let eval = |flags: &[bool]| -> (f64, bool) {
        let ds: Vec<f64> = corners
            .iter()
            .zip(&deltas)
            .map(|(c, delta)| {
                c.offset_ps
                    + flags
                        .iter()
                        .zip(delta)
                        .filter_map(|(&on, d)| on.then_some(d))
                        .sum::<f64>()
            })
            .collect();
        consistent_min_margin(&ds)
    };

    let mut best: Option<(Vec<bool>, f64, bool)> = None;
    for _ in 0..restarts {
        let mut x: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        if !parity.admits(x.iter().filter(|&&b| b).count()) {
            let i = rng.gen_range(0..n);
            x[i] = !x[i];
        }
        let (mut margin, mut bit) = eval(&x);
        loop {
            let mut step: Option<(Vec<bool>, f64, bool)> = None;
            let mut floor = margin;
            let mut consider = |flags: Vec<bool>| {
                let (m, b) = eval(&flags);
                if m > floor + 1e-15 {
                    floor = m;
                    step = Some((flags, m, b));
                }
            };
            match parity {
                ParityPolicy::Ignore => {
                    for i in 0..n {
                        let mut flags = x.clone();
                        flags[i] = !flags[i];
                        consider(flags);
                    }
                }
                ParityPolicy::ForceOdd => {
                    for i in 0..n {
                        for j in i + 1..n {
                            let mut flags = x.clone();
                            flags[i] = !flags[i];
                            flags[j] = !flags[j];
                            consider(flags);
                        }
                    }
                }
            }
            match step {
                Some((flags, m, b)) => {
                    x = flags;
                    margin = m;
                    bit = b;
                }
                None => break,
            }
        }
        if best.as_ref().is_none_or(|(_, m, _)| margin > *m) {
            best = Some((x, margin, bit));
        }
    }
    let (x, margin, bit) = best.expect("at least one restart ran");
    Selection::new(ConfigVector::from_flags(&x), margin, bit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{case1, case2};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn delays(seed: u64, n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut h = seed | 1;
        let mut next = move || {
            h ^= h << 13;
            h ^= h >> 7;
            h ^= h << 17;
            100.0 + (h % 997) as f64 / 100.0
        };
        (
            (0..n).map(|_| next()).collect(),
            (0..n).map(|_| next()).collect(),
        )
    }

    /// A second corner derived from the first by per-stage sensitivity
    /// dispersion, like a V/T excursion produces on real silicon.
    fn perturb(v: &[f64], seed: u64, scale: f64) -> Vec<f64> {
        let mut h = seed | 1;
        v.iter()
            .map(|&d| {
                h ^= h << 13;
                h ^= h >> 7;
                h ^= h << 17;
                d * (1.0 + scale * ((h % 2001) as f64 / 1000.0 - 1.0))
            })
            .collect()
    }

    #[test]
    fn single_corner_reduces_to_the_exact_solvers() {
        for seed in 0..20 {
            for n in 1..=9 {
                let (a, b) = delays(seed, n);
                for parity in [ParityPolicy::Ignore, ParityPolicy::ForceOdd] {
                    let corner = CornerDelays {
                        alpha: &a,
                        beta: &b,
                        offset_ps: 0.75,
                    };
                    assert_eq!(
                        case1_multi_corner(&[corner], parity),
                        case1_with_offset(&a, &b, 0.75, parity)
                    );
                    assert_eq!(
                        case2_multi_corner(&[corner], parity),
                        case2_with_offset(&a, &b, 0.75, parity)
                    );
                }
            }
        }
    }

    #[test]
    fn worst_corner_margin_never_beats_any_single_corner_optimum() {
        for seed in 0..20 {
            let (a0, b0) = delays(seed, 7);
            let a1 = perturb(&a0, seed.wrapping_add(99), 0.02);
            let b1 = perturb(&b0, seed.wrapping_add(177), 0.02);
            let corners = [
                CornerDelays {
                    alpha: &a0,
                    beta: &b0,
                    offset_ps: 0.0,
                },
                CornerDelays {
                    alpha: &a1,
                    beta: &b1,
                    offset_ps: 0.0,
                },
            ];
            let multi = case1_multi_corner(&corners, ParityPolicy::Ignore);
            let c0 = case1(&a0, &b0, ParityPolicy::Ignore);
            let c1 = case1(&a1, &b1, ParityPolicy::Ignore);
            assert!(multi.margin() <= c0.margin() + 1e-9, "seed {seed}");
            assert!(multi.margin() <= c1.margin() + 1e-9, "seed {seed}");
            let multi2 = case2_multi_corner(&corners, ParityPolicy::Ignore);
            let d0 = case2(&a0, &b0, ParityPolicy::Ignore);
            let d1 = case2(&a1, &b1, ParityPolicy::Ignore);
            assert!(multi2.margin() <= d0.margin() + 1e-9, "seed {seed}");
            assert!(multi2.margin() <= d1.margin() + 1e-9, "seed {seed}");
        }
    }

    /// The guarantee that matters: the multi-corner result is at least
    /// as good, at its worst corner, as every per-corner optimum is at
    /// *its* worst corner.
    #[test]
    fn beats_every_single_corner_optimum_at_the_worst_corner() {
        let worst_corner_of = |cfg: &ConfigVector, corners: &[CornerDelays<'_>]| -> f64 {
            let sel = cfg.selected_indices();
            let ds: Vec<f64> = corners
                .iter()
                .map(|c| c.offset_ps + sel.iter().map(|&i| c.alpha[i] - c.beta[i]).sum::<f64>())
                .collect();
            consistent_min_margin(&ds).0
        };
        for seed in 0..30 {
            let (a0, b0) = delays(seed, 7);
            let a1 = perturb(&a0, seed.wrapping_add(5), 0.03);
            let b1 = perturb(&b0, seed.wrapping_add(9), 0.03);
            let corners = [
                CornerDelays {
                    alpha: &a0,
                    beta: &b0,
                    offset_ps: 0.0,
                },
                CornerDelays {
                    alpha: &a1,
                    beta: &b1,
                    offset_ps: 0.0,
                },
            ];
            let multi = case1_multi_corner(&corners, ParityPolicy::Ignore);
            for (a, b) in [(&a0, &b0), (&a1, &b1)] {
                let single = case1(a, b, ParityPolicy::Ignore);
                assert!(
                    multi.margin() + 1e-9 >= worst_corner_of(single.config(), &corners),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn sign_disagreement_is_degenerate() {
        // One stage, opposite polarity at the two corners: no selection
        // can satisfy both.
        let corners = [
            CornerDelays {
                alpha: &[11.0],
                beta: &[10.0],
                offset_ps: 0.0,
            },
            CornerDelays {
                alpha: &[10.0],
                beta: &[11.0],
                offset_ps: 0.0,
            },
        ];
        let s = case1_multi_corner(&corners, ParityPolicy::ForceOdd);
        assert!(s.is_degenerate());
        assert!(!s.bit());
        let p = case2_multi_corner(&corners, ParityPolicy::ForceOdd);
        assert!(p.is_degenerate());
    }

    #[test]
    fn force_odd_is_respected_across_corners() {
        for seed in 0..10 {
            let (a0, b0) = delays(seed, 8);
            let a1 = perturb(&a0, seed + 31, 0.02);
            let b1 = perturb(&b0, seed + 47, 0.02);
            let corners = [
                CornerDelays {
                    alpha: &a0,
                    beta: &b0,
                    offset_ps: 1.0,
                },
                CornerDelays {
                    alpha: &a1,
                    beta: &b1,
                    offset_ps: 1.2,
                },
            ];
            let s = case1_multi_corner(&corners, ParityPolicy::ForceOdd);
            assert!(s.config().oscillates(), "seed {seed}");
            let p = case2_multi_corner(&corners, ParityPolicy::ForceOdd);
            assert_eq!(p.top().selected_count(), p.bottom().selected_count());
            assert!(p.top().selected_count() % 2 == 1, "seed {seed}");
        }
    }

    #[test]
    fn local_search_never_beats_brute_force_on_small_rings() {
        let mut rng = StdRng::seed_from_u64(7);
        for seed in 0..15 {
            let (a0, b0) = delays(seed, 6);
            let a1 = perturb(&a0, seed + 3, 0.03);
            let b1 = perturb(&b0, seed + 8, 0.03);
            let corners = [
                CornerDelays {
                    alpha: &a0,
                    beta: &b0,
                    offset_ps: 0.0,
                },
                CornerDelays {
                    alpha: &a1,
                    beta: &b1,
                    offset_ps: 0.0,
                },
            ];
            // Brute-force the min-margin optimum over all 2^6 subsets.
            let mut brute = 0.0f64;
            for mask in 0u32..(1 << 6) {
                let flags: Vec<bool> = (0..6).map(|i| mask >> i & 1 == 1).collect();
                let ds: Vec<f64> = corners
                    .iter()
                    .map(|c| {
                        flags
                            .iter()
                            .enumerate()
                            .filter(|(_, &on)| on)
                            .map(|(i, _)| c.alpha[i] - c.beta[i])
                            .sum::<f64>()
                    })
                    .collect();
                brute = brute.max(consistent_min_margin(&ds).0);
            }
            let heur = case1_local_search_multi(&mut rng, &corners, ParityPolicy::Ignore, 8);
            let exact_seeded = case1_multi_corner(&corners, ParityPolicy::Ignore);
            assert!(heur.margin() <= brute + 1e-9, "seed {seed}");
            assert!(exact_seeded.margin() <= brute + 1e-9, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one corner")]
    fn empty_corner_list_panics() {
        let _ = case1_multi_corner(&[], ParityPolicy::Ignore);
    }

    #[test]
    #[should_panic(expected = "same stages")]
    fn mismatched_corner_lengths_panic() {
        let corners = [
            CornerDelays {
                alpha: &[1.0, 2.0],
                beta: &[1.0, 1.0],
                offset_ps: 0.0,
            },
            CornerDelays {
                alpha: &[1.0],
                beta: &[1.0],
                offset_ps: 0.0,
            },
        ];
        let _ = case1_multi_corner(&corners, ParityPolicy::Ignore);
    }
}
