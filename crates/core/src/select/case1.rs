//! Case-1: both rings share one configuration vector.
//!
//! With `Δd_i = α_i − β_i`, the objective `max_x |Σ Δd_i x_i|` is solved
//! exactly by sign partitioning (§III.D of the paper): the absolute sum is
//! maximal when every included term has the same sign, so the optimum is
//! whichever of {positive-Δd stages, negative-Δd stages} has the larger
//! total magnitude. Under [`ParityPolicy::ForceOdd`](crate::config::ParityPolicy::ForceOdd) the chosen class is
//! adjusted by the cheapest single insertion or removal, which is optimal
//! for a fixed sign class (any removal costs at least the smallest member,
//! any insertion at least the smallest outsider).
//!
//! [`case1_with_offset`] additionally accounts for a configuration-
//! independent delay offset between the two rings (the bypass-path total
//! `B_top − B_bottom` of real hardware): it maximizes `|offset + Σ Δd_i
//! x_i|`, which is still achieved by one of the two sign-class extremes.

use ropuf_telemetry as telemetry;

use crate::config::{ConfigVector, ParityPolicy};
use crate::select::{validate_inputs, Selection};

/// Solves the Case-1 inverter selection problem.
///
/// Returns the shared configuration, the achieved margin
/// `|Σ (α_i − β_i) x_i|`, and the enrolled bit (`true` = top slower).
///
/// # Panics
///
/// Panics if the inputs are empty, of different lengths, or non-finite.
///
/// # Examples
///
/// ```
/// use ropuf_core::select::case1;
/// use ropuf_core::config::ParityPolicy;
///
/// let top =    [10.0, 12.0, 9.0];
/// let bottom = [11.0, 10.0, 10.5];
/// let s = case1(&top, &bottom, ParityPolicy::Ignore);
/// // Δd = [-1, +2, -1.5]: the negative class (stages 0 and 2, total 2.5)
/// // beats the positive class (stage 1, total 2).
/// assert_eq!(s.config().to_string(), "101");
/// assert!((s.margin() - 2.5).abs() < 1e-12);
/// assert!(!s.bit()); // bottom is slower on the selected stages
/// ```
pub fn case1(alpha: &[f64], beta: &[f64], parity: ParityPolicy) -> Selection {
    case1_with_offset(alpha, beta, 0.0, parity)
}

/// Case-1 selection maximizing `|offset_ps + Σ (α_i − β_i) x_i|`.
///
/// `offset_ps` models the configuration-independent part of the ring
/// delay difference — on real hardware, the difference of the two rings'
/// total bypass (`d0`) delays. The paper's idealized formulation is the
/// `offset_ps == 0` special case.
///
/// # Panics
///
/// Panics if the inputs are invalid (see [`case1`]) or `offset_ps` is not
/// finite.
pub fn case1_with_offset(
    alpha: &[f64],
    beta: &[f64],
    offset_ps: f64,
    parity: ParityPolicy,
) -> Selection {
    validate_inputs(alpha, beta);
    assert!(
        offset_ps.is_finite(),
        "offset must be finite, got {offset_ps}"
    );
    let n = alpha.len();
    let delta: Vec<f64> = alpha.iter().zip(beta).map(|(a, b)| a - b).collect();

    // The extremes of Σ Δd·x over admissible subsets.
    let (max_set, max_sum) = extreme_subset(&delta, true, parity);
    let (min_set, min_sum) = extreme_subset(&delta, false, parity);

    let d_high = offset_ps + max_sum;
    let d_low = offset_ps + min_sum;
    let (set, diff) = if d_high.abs() >= d_low.abs() {
        telemetry::counter("select.case1.positive_wins", 1);
        (max_set, d_high)
    } else {
        telemetry::counter("select.case1.negative_wins", 1);
        (min_set, d_low)
    };
    let selection = Selection::new(ConfigVector::from_selected(n, &set), diff.abs(), diff > 0.0);
    if selection.is_degenerate() {
        telemetry::counter("select.case1.degenerate", 1);
    }
    selection
}

/// Subset extremizing `Σ Δd_i x_i` subject to the parity policy:
/// the maximum when `maximize`, the minimum otherwise. Returns the chosen
/// indices (ascending) and the achieved signed sum.
pub(super) fn extreme_subset(
    delta: &[f64],
    maximize: bool,
    parity: ParityPolicy,
) -> (Vec<usize>, f64) {
    let signed = |d: f64| if maximize { d } else { -d };
    let mut class: Vec<usize> = (0..delta.len())
        .filter(|&i| signed(delta[i]) > 0.0)
        .collect();
    let mut gain: f64 = class.iter().map(|&i| signed(delta[i])).sum();

    if !parity.admits(class.len()) {
        // Flip parity by one stage. Two candidate repairs: drop the
        // smallest in-class contribution, or add the outsider with the
        // smallest cost (its signed value is ≤ 0).
        let drop = class
            .iter()
            .copied()
            .min_by(|&a, &b| signed(delta[a]).total_cmp(&signed(delta[b])));
        let add = (0..delta.len())
            .filter(|i| !class.contains(i))
            .max_by(|&a, &b| signed(delta[a]).total_cmp(&signed(delta[b])));
        let drop_gain = drop.map(|i| gain - signed(delta[i]));
        let add_gain = add.map(|i| gain + signed(delta[i]));
        match (drop_gain, add_gain) {
            (Some(dg), Some(ag)) if dg >= ag => {
                class.retain(|&i| Some(i) != drop);
                gain = dg;
            }
            (Some(_) | None, Some(ag)) => {
                class.push(add.expect("add candidate exists"));
                class.sort_unstable();
                gain = ag;
            }
            (Some(dg), None) => {
                class.retain(|&i| Some(i) != drop);
                gain = dg;
            }
            (None, None) => unreachable!("a non-empty delay vector always offers a repair"),
        }
    }
    let sum = if maximize { gain } else { -gain };
    (class, sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_dominant_positive_class() {
        let top = [12.0, 13.0, 10.0, 14.0];
        let bottom = [10.0, 10.0, 11.0, 10.0];
        // Δd = [2, 3, -1, 4]: positive class {0,1,3} total 9 vs 1.
        let s = case1(&top, &bottom, ParityPolicy::Ignore);
        assert_eq!(s.config().selected_indices(), vec![0, 1, 3]);
        assert!((s.margin() - 9.0).abs() < 1e-12);
        assert!(s.bit());
    }

    #[test]
    fn picks_dominant_negative_class() {
        let top = [10.0, 10.0, 10.0];
        let bottom = [12.0, 9.0, 13.0];
        // Δd = [-2, 1, -3]: negative class {0,2} total 5 vs 1.
        let s = case1(&top, &bottom, ParityPolicy::Ignore);
        assert_eq!(s.config().selected_indices(), vec![0, 2]);
        assert!((s.margin() - 5.0).abs() < 1e-12);
        assert!(!s.bit());
    }

    #[test]
    fn zero_deltas_are_never_selected() {
        let top = [10.0, 11.0, 10.0];
        let bottom = [10.0, 10.0, 10.0];
        let s = case1(&top, &bottom, ParityPolicy::Ignore);
        assert_eq!(s.config().selected_indices(), vec![1]);
    }

    #[test]
    fn all_equal_delays_give_zero_margin() {
        let d = [10.0, 10.0, 10.0];
        let s = case1(&d, &d, ParityPolicy::Ignore);
        assert_eq!(s.margin(), 0.0);
        assert_eq!(s.config().selected_count(), 0);
        assert!(s.is_degenerate(), "zero-margin ties must be visible");
        assert!(!s.bit(), "tie resolves to the conventional 0 bit");
    }

    #[test]
    fn force_odd_adds_free_stage_when_cheaper() {
        let top = [15.0, 13.0, 10.0, 10.0];
        let bottom = [10.0, 10.0, 10.0, 10.0];
        // Δd = [5, 3, 0, 0]: class {0,1} is even. Dropping stage 1 keeps
        // margin 5; adding a zero-Δd stage keeps margin 8. Add wins.
        let s = case1(&top, &bottom, ParityPolicy::ForceOdd);
        assert_eq!(s.config().selected_count(), 3);
        assert!((s.margin() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn force_odd_prefers_drop_when_adding_is_expensive() {
        let top = [15.0, 13.0, 5.0];
        let bottom = [10.0, 10.0, 10.0];
        // Δd = [5, 3, -5]: class {0,1} even. Drop stage 1 → 5;
        // add stage 2 → 8 − 5 = 3. Drop wins.
        let s = case1(&top, &bottom, ParityPolicy::ForceOdd);
        assert_eq!(s.config().selected_indices(), vec![0]);
        assert!((s.margin() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn force_odd_on_already_odd_class_is_untouched() {
        let top = [15.0, 13.0, 12.0];
        let bottom = [10.0, 10.0, 10.0];
        let ignore = case1(&top, &bottom, ParityPolicy::Ignore);
        let odd = case1(&top, &bottom, ParityPolicy::ForceOdd);
        assert_eq!(ignore, odd);
    }

    #[test]
    fn force_odd_handles_all_zero_deltas() {
        let d = [10.0, 10.0];
        let s = case1(&d, &d, ParityPolicy::ForceOdd);
        assert_eq!(s.config().selected_count(), 1);
        assert_eq!(s.margin(), 0.0);
    }

    #[test]
    fn margin_is_symmetric_in_ring_order() {
        let top = [11.0, 9.5, 10.2];
        let bottom = [10.0, 10.0, 10.0];
        let ab = case1(&top, &bottom, ParityPolicy::Ignore);
        let ba = case1(&bottom, &top, ParityPolicy::Ignore);
        assert!((ab.margin() - ba.margin()).abs() < 1e-12);
        assert_eq!(ab.config(), ba.config());
        assert_ne!(ab.bit(), ba.bit());
    }

    #[test]
    fn offset_shifts_the_choice() {
        let top = [11.0, 10.0];
        let bottom = [10.0, 11.0];
        // Δd = [1, -1]. Without offset either class gives margin 1.
        // With offset +3 the positive class reaches |3+1| = 4 while the
        // negative class reaches |3-1| = 2.
        let s = case1_with_offset(&top, &bottom, 3.0, ParityPolicy::Ignore);
        assert_eq!(s.config().selected_indices(), vec![0]);
        assert!((s.margin() - 4.0).abs() < 1e-12);
        assert!(s.bit());
    }

    #[test]
    fn negative_offset_can_prefer_negative_class() {
        let top = [11.0, 10.0];
        let bottom = [10.0, 11.0];
        let s = case1_with_offset(&top, &bottom, -3.0, ParityPolicy::Ignore);
        assert_eq!(s.config().selected_indices(), vec![1]);
        assert!((s.margin() - 4.0).abs() < 1e-12);
        assert!(!s.bit());
    }

    #[test]
    fn zero_offset_matches_plain_case1() {
        let top = [10.3, 9.7, 10.1, 9.9];
        let bottom = [10.0, 10.1, 9.8, 10.2];
        assert_eq!(
            case1(&top, &bottom, ParityPolicy::Ignore),
            case1_with_offset(&top, &bottom, 0.0, ParityPolicy::Ignore)
        );
    }

    #[test]
    #[should_panic(expected = "same number of stages")]
    fn length_mismatch_panics() {
        let _ = case1(&[1.0], &[1.0, 2.0], ParityPolicy::Ignore);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_panics() {
        let _ = case1(&[f64::NAN], &[1.0], ParityPolicy::Ignore);
    }

    #[test]
    #[should_panic(expected = "offset must be finite")]
    fn non_finite_offset_panics() {
        let _ = case1_with_offset(&[1.0], &[1.0], f64::INFINITY, ParityPolicy::Ignore);
    }
}
