//! Exhaustive selection oracles.
//!
//! These enumerate every admissible configuration and are exponential in
//! the stage count — they exist so the test suite can prove the
//! polynomial-time solvers in [`case1`](crate::select::case1) and
//! [`case2`](crate::select::case2) optimal, and so ablation experiments
//! can quantify the cost the paper's equal-count security constraint
//! imposes.

use crate::config::{ConfigVector, ParityPolicy};
use crate::select::{validate_inputs, PairSelection, Selection};

/// Maximum stage count accepted by the oracles (2^2n pair subsets).
const MAX_BRUTE_STAGES: usize = 16;

/// Exhaustive Case-1 solver: tries all `2^n` shared configurations.
///
/// # Panics
///
/// Panics on invalid inputs (see [`case1`](crate::select::case1)) or if
/// `alpha.len() > 16`.
///
/// # Examples
///
/// ```
/// use ropuf_core::select::{brute_force_case1, case1};
/// use ropuf_core::config::ParityPolicy;
///
/// let top = [10.3, 9.8, 10.1];
/// let bottom = [10.0, 10.0, 10.0];
/// let fast = case1(&top, &bottom, ParityPolicy::Ignore);
/// let brute = brute_force_case1(&top, &bottom, ParityPolicy::Ignore);
/// assert!((fast.margin() - brute.margin()).abs() < 1e-12);
/// ```
pub fn brute_force_case1(alpha: &[f64], beta: &[f64], parity: ParityPolicy) -> Selection {
    validate_inputs(alpha, beta);
    let n = alpha.len();
    assert!(
        n <= MAX_BRUTE_STAGES,
        "brute force limited to {MAX_BRUTE_STAGES} stages"
    );
    let mut best: Option<(u32, f64, bool)> = None;
    for mask in 0u32..(1 << n) {
        let count = mask.count_ones() as usize;
        if !parity.admits(count) {
            continue;
        }
        let mut diff = 0.0;
        for i in 0..n {
            if mask >> i & 1 == 1 {
                diff += alpha[i] - beta[i];
            }
        }
        let margin = diff.abs();
        if best.is_none_or(|(_, m, _)| margin > m + 1e-15) {
            best = Some((mask, margin, diff > 0.0));
        }
    }
    let (mask, margin, top_slower) = best.expect("at least one admissible configuration exists");
    Selection::new(mask_to_config(n, mask), margin, top_slower)
}

/// Exhaustive Case-2 solver: tries all configuration pairs with equal
/// selected counts.
///
/// # Panics
///
/// Panics on invalid inputs or if `alpha.len() > 16` (the search is
/// `O(4^n)`).
pub fn brute_force_case2(alpha: &[f64], beta: &[f64], parity: ParityPolicy) -> PairSelection {
    validate_inputs(alpha, beta);
    let n = alpha.len();
    assert!(
        n <= MAX_BRUTE_STAGES,
        "brute force limited to {MAX_BRUTE_STAGES} stages"
    );
    let mut best: Option<(u32, u32, f64, bool)> = None;
    for x in 0u32..(1 << n) {
        let count = x.count_ones();
        if !parity.admits(count as usize) {
            continue;
        }
        let top: f64 = (0..n).filter(|&i| x >> i & 1 == 1).map(|i| alpha[i]).sum();
        for y in 0u32..(1 << n) {
            if y.count_ones() != count {
                continue;
            }
            let bottom: f64 = (0..n).filter(|&i| y >> i & 1 == 1).map(|i| beta[i]).sum();
            let diff = top - bottom;
            let margin = diff.abs();
            if best.is_none_or(|(_, _, m, _)| margin > m + 1e-15) {
                best = Some((x, y, margin, diff > 0.0));
            }
        }
    }
    let (x, y, margin, top_slower) =
        best.expect("at least one admissible configuration pair exists");
    PairSelection::new(
        mask_to_config(n, x),
        mask_to_config(n, y),
        margin,
        top_slower,
    )
}

fn mask_to_config(n: usize, mask: u32) -> ConfigVector {
    let flags: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
    ConfigVector::from_flags(&flags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{case1, case2};

    fn delays(seed: u64, n: usize) -> (Vec<f64>, Vec<f64>) {
        // Simple deterministic pseudo-random delays around 100.
        let mut h = seed | 1;
        let mut next = move || {
            h ^= h << 13;
            h ^= h >> 7;
            h ^= h << 17;
            100.0 + ((h % 1000) as f64 / 500.0 - 1.0)
        };
        let a: Vec<f64> = (0..n).map(|_| next()).collect();
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn case1_is_optimal_ignore_parity() {
        for seed in 0..50 {
            for n in 1..=8 {
                let (a, b) = delays(seed, n);
                let fast = case1(&a, &b, ParityPolicy::Ignore);
                let brute = brute_force_case1(&a, &b, ParityPolicy::Ignore);
                assert!(
                    (fast.margin() - brute.margin()).abs() < 1e-9,
                    "seed {seed} n {n}: {} vs {}",
                    fast.margin(),
                    brute.margin()
                );
            }
        }
    }

    #[test]
    fn case1_is_optimal_force_odd() {
        for seed in 0..50 {
            for n in 1..=8 {
                let (a, b) = delays(seed, n);
                let fast = case1(&a, &b, ParityPolicy::ForceOdd);
                let brute = brute_force_case1(&a, &b, ParityPolicy::ForceOdd);
                assert!(fast.config().oscillates());
                assert!(
                    (fast.margin() - brute.margin()).abs() < 1e-9,
                    "seed {seed} n {n}: {} vs {}",
                    fast.margin(),
                    brute.margin()
                );
            }
        }
    }

    #[test]
    fn case2_is_optimal_ignore_parity() {
        for seed in 0..30 {
            for n in 1..=6 {
                let (a, b) = delays(seed, n);
                let fast = case2(&a, &b, ParityPolicy::Ignore);
                let brute = brute_force_case2(&a, &b, ParityPolicy::Ignore);
                assert!(
                    (fast.margin() - brute.margin()).abs() < 1e-9,
                    "seed {seed} n {n}: {} vs {}",
                    fast.margin(),
                    brute.margin()
                );
            }
        }
    }

    #[test]
    fn case2_is_optimal_force_odd() {
        for seed in 0..30 {
            for n in 1..=6 {
                let (a, b) = delays(seed, n);
                let fast = case2(&a, &b, ParityPolicy::ForceOdd);
                let brute = brute_force_case2(&a, &b, ParityPolicy::ForceOdd);
                assert!(fast.top().oscillates() && fast.bottom().oscillates());
                assert!(
                    (fast.margin() - brute.margin()).abs() < 1e-9,
                    "seed {seed} n {n}: {} vs {}",
                    fast.margin(),
                    brute.margin()
                );
            }
        }
    }

    #[test]
    fn brute_bits_agree_with_fast_solvers_when_margin_positive() {
        for seed in 0..20 {
            let (a, b) = delays(seed, 6);
            let fast = case1(&a, &b, ParityPolicy::Ignore);
            let brute = brute_force_case1(&a, &b, ParityPolicy::Ignore);
            if fast.margin() > 1e-9 {
                assert_eq!(fast.bit(), brute.bit(), "seed {seed}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn brute_rejects_large_n() {
        let a = vec![1.0; 20];
        let _ = brute_force_case1(&a, &a, ParityPolicy::Ignore);
    }
}
