//! Case-2: independent configurations with equal selected counts.
//!
//! For a fixed count `k`, the delay difference `Σ α x − Σ β y` is
//! maximized by taking the `k` slowest stages of the top ring and the `k`
//! fastest of the bottom ring (and symmetrically for the opposite
//! orientation). Sorting both delay vectors therefore reduces the problem
//! to choosing the best prefix length: exactly the paper's "pair the i-th
//! slowest with the i-th fastest and accumulate while the discrepancy
//! keeps its sign" procedure. Both orientations are evaluated and the
//! larger magnitude wins.
//!
//! [`case2_with_offset`] extends the objective to
//! `|offset + Σ α x − Σ β y|` for the configuration-independent bypass
//! delay offset of real hardware.

use ropuf_telemetry as telemetry;

use crate::config::{ConfigVector, ParityPolicy};
use crate::select::{validate_inputs, PairSelection};

/// Solves the Case-2 inverter selection problem.
///
/// Returns independent top/bottom configurations with equal selected
/// counts, the achieved margin, and the enrolled bit (`true` = top
/// slower).
///
/// # Panics
///
/// Panics if the inputs are empty, of different lengths, or non-finite.
///
/// # Examples
///
/// ```
/// use ropuf_core::select::case2;
/// use ropuf_core::config::ParityPolicy;
///
/// let top =    [10.0, 12.0, 11.0];
/// let bottom = [11.5, 10.5, 9.0];
/// let s = case2(&top, &bottom, ParityPolicy::Ignore);
/// assert_eq!(s.top().selected_count(), s.bottom().selected_count());
/// // Slowest-top {12, 11} against fastest-bottom {9, 10.5}:
/// // margin = (12+11) − (9+10.5) = 3.5.
/// assert!((s.margin() - 3.5).abs() < 1e-12);
/// assert!(s.bit());
/// ```
pub fn case2(alpha: &[f64], beta: &[f64], parity: ParityPolicy) -> PairSelection {
    case2_with_offset(alpha, beta, 0.0, parity)
}

/// Case-2 selection maximizing `|offset_ps + Σ α_i x_i − Σ β_i y_i|`
/// subject to `Σ x = Σ y`.
///
/// # Panics
///
/// Panics if the inputs are invalid (see [`case2`]) or `offset_ps` is not
/// finite.
pub fn case2_with_offset(
    alpha: &[f64],
    beta: &[f64],
    offset_ps: f64,
    parity: ParityPolicy,
) -> PairSelection {
    validate_inputs(alpha, beta);
    assert!(
        offset_ps.is_finite(),
        "offset must be finite, got {offset_ps}"
    );
    let n = alpha.len();

    // Orientation A maximizes the signed difference D = offset + Σαx − Σβy:
    // slowest-k of α against fastest-k of β.
    let (k_max, d_max) = extreme_prefix(alpha, beta, offset_ps, parity);
    // Orientation B minimizes D: fastest-k of α against slowest-k of β,
    // equivalently maximizes −D = −offset + Σβy' − Σαx'.
    let (k_min, neg_d_min) = extreme_prefix(beta, alpha, -offset_ps, parity);
    let d_min = -neg_d_min;

    let selection = if d_max.abs() >= d_min.abs() {
        telemetry::counter("select.case2.forward_wins", 1);
        let top = select_extreme(alpha, k_max, Extreme::Slowest);
        let bottom = select_extreme(beta, k_max, Extreme::Fastest);
        PairSelection::new(
            ConfigVector::from_selected(n, &top),
            ConfigVector::from_selected(n, &bottom),
            d_max.abs(),
            // Strict: an exact tie (D == 0) has no slower ring; the
            // conventional `false` is flagged via `is_degenerate`.
            d_max > 0.0,
        )
    } else {
        telemetry::counter("select.case2.reverse_wins", 1);
        let top = select_extreme(alpha, k_min, Extreme::Fastest);
        let bottom = select_extreme(beta, k_min, Extreme::Slowest);
        PairSelection::new(
            ConfigVector::from_selected(n, &top),
            ConfigVector::from_selected(n, &bottom),
            d_min.abs(),
            d_min > 0.0,
        )
    };
    if selection.is_degenerate() {
        telemetry::counter("select.case2.degenerate", 1);
        // A degenerate pair (margin exactly 0) has no slower ring, and
        // the strict `d > 0.0` comparison resolves every such tie to
        // the conventional 0 bit. That bias is unavoidable, but it is a
        // distinguisher an attacker can exploit on fleets with many
        // ties — count the zero-resolutions so the attack suite (and
        // operators) can see exactly how many bits were conventional
        // rather than silicon-derived.
        if !selection.bit() {
            telemetry::counter("select.case2.degenerate_zero_bias", 1);
        }
    }
    selection
}

/// Maximizes `offset + Σ_{i≤k}(slow_desc[i] − fast_asc[i])` over
/// admissible `k`. Under `ParityPolicy::Ignore` the scan includes `k = 0`
/// (value `offset`); under `ForceOdd` only odd `k` qualify.
pub(super) fn extreme_prefix(
    slow: &[f64],
    fast: &[f64],
    offset: f64,
    parity: ParityPolicy,
) -> (usize, f64) {
    let n = slow.len();
    let mut slow_sorted = slow.to_vec();
    slow_sorted.sort_by(|a, b| b.total_cmp(a)); // descending
    let mut fast_sorted = fast.to_vec();
    fast_sorted.sort_by(|a, b| a.total_cmp(b)); // ascending

    let mut best: Option<(usize, f64)> = match parity {
        ParityPolicy::Ignore => Some((0, offset)),
        ParityPolicy::ForceOdd => None,
    };
    let mut acc = offset;
    for k in 1..=n {
        acc += slow_sorted[k - 1] - fast_sorted[k - 1];
        if parity.admits(k) && best.is_none_or(|(_, m)| acc > m) {
            best = Some((k, acc));
        }
    }
    best.expect("at least one admissible k exists for n >= 1")
}

#[derive(Clone, Copy)]
pub(super) enum Extreme {
    Slowest,
    Fastest,
}

/// Indices of the `k` slowest (largest delay) or fastest stages; ties are
/// broken by original index, matching the sorts in [`extreme_prefix`].
pub(super) fn select_extreme(delays: &[f64], k: usize, which: Extreme) -> Vec<usize> {
    let mut order: Vec<usize> = (0..delays.len()).collect();
    match which {
        Extreme::Slowest => order.sort_by(|&a, &b| delays[b].total_cmp(&delays[a]).then(a.cmp(&b))),
        Extreme::Fastest => order.sort_by(|&a, &b| delays[a].total_cmp(&delays[b]).then(a.cmp(&b))),
    }
    let mut chosen: Vec<usize> = order.into_iter().take(k).collect();
    chosen.sort_unstable();
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signed_diff(alpha: &[f64], beta: &[f64], offset: f64, sel: &PairSelection) -> f64 {
        let top: f64 = sel.top().selected_indices().iter().map(|&i| alpha[i]).sum();
        let bottom: f64 = sel
            .bottom()
            .selected_indices()
            .iter()
            .map(|&i| beta[i])
            .sum();
        offset + top - bottom
    }

    #[test]
    fn reported_margin_matches_configs() {
        let alpha = [10.0, 12.5, 11.0, 9.0];
        let beta = [11.0, 10.0, 12.0, 10.5];
        let s = case2(&alpha, &beta, ParityPolicy::Ignore);
        assert!((s.margin() - signed_diff(&alpha, &beta, 0.0, &s).abs()).abs() < 1e-12);
    }

    #[test]
    fn equal_counts_enforced() {
        let alpha = [10.0, 12.5, 11.0, 9.0, 10.3];
        let beta = [11.0, 10.0, 12.0, 10.5, 9.9];
        for parity in [ParityPolicy::Ignore, ParityPolicy::ForceOdd] {
            let s = case2(&alpha, &beta, parity);
            assert_eq!(s.top().selected_count(), s.bottom().selected_count());
        }
    }

    #[test]
    fn orientation_flip_swaps_bit() {
        let alpha = [13.0, 11.0, 10.0];
        let beta = [10.0, 9.5, 10.2];
        let ab = case2(&alpha, &beta, ParityPolicy::Ignore);
        let ba = case2(&beta, &alpha, ParityPolicy::Ignore);
        assert!((ab.margin() - ba.margin()).abs() < 1e-12);
        assert_ne!(ab.bit(), ba.bit());
    }

    #[test]
    fn case2_beats_or_matches_case1() {
        use crate::select::case1;
        let alpha = [10.0, 12.5, 11.0, 9.0, 10.3, 11.7];
        let beta = [11.0, 10.0, 12.0, 10.5, 9.9, 10.8];
        let c1 = case1(&alpha, &beta, ParityPolicy::Ignore);
        let c2 = case2(&alpha, &beta, ParityPolicy::Ignore);
        assert!(c2.margin() >= c1.margin() - 1e-12);
    }

    #[test]
    fn identical_rings_still_find_margin() {
        let d = [10.0, 11.0, 12.0];
        let s = case2(&d, &d, ParityPolicy::Ignore);
        // Slowest of top (12) vs fastest of bottom (10): margin 2.
        assert!((s.margin() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn constant_rings_zero_margin() {
        let d = [10.0, 10.0, 10.0];
        let s = case2(&d, &d, ParityPolicy::Ignore);
        assert_eq!(s.margin(), 0.0);
        assert_eq!(s.top().selected_count(), 0);
    }

    #[test]
    fn zero_margin_pairs_are_flagged_degenerate() {
        // Regression: `d_max > 0.0` makes bit() always false when the
        // achieved margin is exactly 0 (constant rings), silently
        // biasing degenerate pairs toward 0. The bias is unavoidable —
        // there is no slower ring — but it must be *visible*.
        let d = [10.0, 10.0, 10.0];
        for parity in [ParityPolicy::Ignore, ParityPolicy::ForceOdd] {
            let s = case2(&d, &d, parity);
            assert_eq!(s.margin(), 0.0);
            assert!(!s.bit(), "tie resolves to the conventional 0 bit");
            assert!(s.is_degenerate(), "callers must be able to see the tie");
        }
        // A genuine margin is not degenerate, however small.
        let s = case2(&[10.0, 10.0], &[10.0, 10.000001], ParityPolicy::Ignore);
        assert!(!s.is_degenerate());
        assert!(s.margin() > 0.0);
    }

    /// Every degenerate tie resolves to the conventional 0, and that
    /// resolution must be observable: the
    /// `select.case2.degenerate_zero_bias` counter counts exactly the
    /// degenerate selections whose bit came from convention, not
    /// silicon. A non-degenerate selection must not bump it.
    #[test]
    fn degenerate_zero_bias_is_counted() {
        use std::sync::Arc;
        let sink = Arc::new(ropuf_telemetry::MemorySink::default());
        ropuf_telemetry::scoped(sink.clone(), || {
            let d = [10.0, 10.0, 10.0];
            let _ = case2(&d, &d, ParityPolicy::Ignore); // tie → 0 bit
            let _ = case2(&d, &d, ParityPolicy::ForceOdd); // tie → 0 bit
            let _ = case2(&[10.0, 12.0], &[11.0, 9.0], ParityPolicy::Ignore);
        });
        let snap = sink.snapshot().expect("counters recorded");
        assert_eq!(snap.counter("select.case2.degenerate"), Some(2));
        assert_eq!(snap.counter("select.case2.degenerate_zero_bias"), Some(2));
    }

    #[test]
    fn forced_parity_degenerate_pairs_are_flagged() {
        // ForceOdd on constant rings selects one stage per ring and
        // still ties exactly — degenerate even with a non-empty config.
        let d = [10.0, 10.0];
        let s = case2(&d, &d, ParityPolicy::ForceOdd);
        assert_eq!(s.top().selected_count(), 1);
        assert!(s.is_degenerate());
        assert!(!s.bit());
        // A nonzero bypass offset breaks the tie: margin |offset| > 0.
        let s = case2_with_offset(&d, &d, 4.0, ParityPolicy::Ignore);
        assert!(!s.is_degenerate());
    }

    #[test]
    fn force_odd_yields_odd_counts() {
        let alpha = [10.0, 12.5, 11.0, 9.0];
        let beta = [11.0, 10.0, 12.0, 10.5];
        let s = case2(&alpha, &beta, ParityPolicy::ForceOdd);
        assert_eq!(s.top().selected_count() % 2, 1);
        assert_eq!(s.bottom().selected_count() % 2, 1);
    }

    #[test]
    fn force_odd_constant_rings_pick_one_stage() {
        let d = [10.0, 10.0];
        let s = case2(&d, &d, ParityPolicy::ForceOdd);
        assert_eq!(s.top().selected_count(), 1);
        assert_eq!(s.margin(), 0.0);
    }

    #[test]
    fn hand_worked_example() {
        // α sorted desc: [12, 11, 10]; β sorted asc: [9, 10.5, 11.5].
        // increments: 3, 0.5, -1.5 → best k=2, margin 3.5, top slower.
        let alpha = [10.0, 12.0, 11.0];
        let beta = [11.5, 10.5, 9.0];
        let s = case2(&alpha, &beta, ParityPolicy::Ignore);
        assert_eq!(s.top().selected_indices(), vec![1, 2]);
        assert_eq!(s.bottom().selected_indices(), vec![1, 2]);
        assert!((s.margin() - 3.5).abs() < 1e-12);
        assert!(s.bit());
    }

    #[test]
    fn offset_is_added_to_margin() {
        let alpha = [10.0, 12.0, 11.0];
        let beta = [11.5, 10.5, 9.0];
        // Base optimum is +3.5 (top slower); an offset of +2 rides along.
        let s = case2_with_offset(&alpha, &beta, 2.0, ParityPolicy::Ignore);
        assert!((s.margin() - 5.5).abs() < 1e-12);
        assert!(s.bit());
        // An offset of −10 flips the preferred orientation.
        let s = case2_with_offset(&alpha, &beta, -10.0, ParityPolicy::Ignore);
        assert!(!s.bit());
        assert!((signed_diff(&alpha, &beta, -10.0, &s) + s.margin()).abs() < 1e-12);
    }

    #[test]
    fn offset_only_margin_with_empty_selection() {
        let d = [10.0, 10.0];
        let s = case2_with_offset(&d, &d, 4.0, ParityPolicy::Ignore);
        assert_eq!(s.top().selected_count(), 0);
        assert!((s.margin() - 4.0).abs() < 1e-12);
        assert!(s.bit());
    }

    #[test]
    fn combined_config_is_concatenation() {
        let alpha = [10.0, 12.0];
        let beta = [11.0, 9.0];
        let s = case2(&alpha, &beta, ParityPolicy::Ignore);
        let combined = s.combined_config();
        assert_eq!(combined.len(), 4);
        assert_eq!(combined.to_string(), format!("{}{}", s.top(), s.bottom()));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_inputs_panic() {
        let _ = case2(&[], &[], ParityPolicy::Ignore);
    }
}
