//! A randomized local-search selector, for comparison with the exact
//! solvers.
//!
//! §III.C observes that exhaustively evaluating all
//! `C(n,1) + C(n,3) + … + C(n,n)` configurations "will be expensive,
//! particularly when n is large", and §III.D answers with closed-form
//! optimal algorithms. This module implements the obvious alternative a
//! practitioner might reach for instead — restart hill climbing over
//! single-bit flips — so the `select_local_search` Criterion bench and
//! the test suite can quantify what the exact solution buys.
//!
//! Spoiler (see the tests): hill climbing matches the Case-1 optimum
//! almost always on small rings but needs many restarts as `n` grows,
//! while the exact solver is `O(n log n)` and always right.

use rand::Rng;

use crate::config::{ConfigVector, ParityPolicy};
use crate::select::{validate_inputs, Selection};

/// Case-1 selection by restart hill climbing: from random starting
/// configurations, greedily flip the single stage that most improves
/// `|Σ Δd_i x_i|` until no flip helps; keep the best of `restarts`
/// climbs.
///
/// Under [`ParityPolicy::ForceOdd`] the search moves by *pairs* of flips
/// (preserving parity) after an odd-parity start.
///
/// # Panics
///
/// Panics if the inputs are invalid (see
/// [`case1`](crate::select::case1)) or `restarts == 0`.
pub fn case1_local_search<R: Rng + ?Sized>(
    rng: &mut R,
    alpha: &[f64],
    beta: &[f64],
    parity: ParityPolicy,
    restarts: usize,
) -> Selection {
    validate_inputs(alpha, beta);
    assert!(restarts > 0, "local search needs at least one restart");
    let n = alpha.len();
    let delta: Vec<f64> = alpha.iter().zip(beta).map(|(a, b)| a - b).collect();

    let mut best: Option<(Vec<bool>, f64)> = None;
    for _ in 0..restarts {
        // Random start satisfying the parity policy.
        let mut x: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        if !parity.admits(x.iter().filter(|&&b| b).count()) {
            let i = rng.gen_range(0..n);
            x[i] = !x[i];
        }
        let mut sum: f64 = (0..n).map(|i| if x[i] { delta[i] } else { 0.0 }).sum();
        loop {
            let (next_x, next_sum) = match parity {
                ParityPolicy::Ignore => best_single_flip(&x, sum, &delta),
                ParityPolicy::ForceOdd => best_double_flip(&x, sum, &delta),
            };
            if next_sum.abs() > sum.abs() + 1e-15 {
                x = next_x;
                sum = next_sum;
            } else {
                break;
            }
        }
        if best.as_ref().is_none_or(|(_, b)| sum.abs() > b.abs()) {
            best = Some((x, sum));
        }
    }
    let (x, sum) = best.expect("at least one restart ran");
    Selection::new(ConfigVector::from_flags(&x), sum.abs(), sum > 0.0)
}

fn best_single_flip(x: &[bool], sum: f64, delta: &[f64]) -> (Vec<bool>, f64) {
    let mut best_sum = sum;
    let mut best_i = None;
    for i in 0..x.len() {
        let s = if x[i] { sum - delta[i] } else { sum + delta[i] };
        if s.abs() > best_sum.abs() {
            best_sum = s;
            best_i = Some(i);
        }
    }
    match best_i {
        Some(i) => {
            let mut nx = x.to_vec();
            nx[i] = !nx[i];
            (nx, best_sum)
        }
        None => (x.to_vec(), sum),
    }
}

fn best_double_flip(x: &[bool], sum: f64, delta: &[f64]) -> (Vec<bool>, f64) {
    let mut best_sum = sum;
    let mut best_pair = None;
    let contribution = |i: usize| if x[i] { -delta[i] } else { delta[i] };
    for i in 0..x.len() {
        for j in i + 1..x.len() {
            let s = sum + contribution(i) + contribution(j);
            if s.abs() > best_sum.abs() {
                best_sum = s;
                best_pair = Some((i, j));
            }
        }
    }
    match best_pair {
        Some((i, j)) => {
            let mut nx = x.to_vec();
            nx[i] = !nx[i];
            nx[j] = !nx[j];
            (nx, best_sum)
        }
        None => (x.to_vec(), sum),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::case1;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn delays(seed: u64, n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut h = seed | 1;
        let mut next = move || {
            h ^= h << 13;
            h ^= h >> 7;
            h ^= h << 17;
            100.0 + (h % 997) as f64 / 100.0
        };
        (
            (0..n).map(|_| next()).collect(),
            (0..n).map(|_| next()).collect(),
        )
    }

    #[test]
    fn never_beats_the_exact_solver() {
        let mut rng = StdRng::seed_from_u64(1);
        for seed in 0..40 {
            for n in 1..=12 {
                let (a, b) = delays(seed, n);
                let exact = case1(&a, &b, ParityPolicy::Ignore);
                let heur = case1_local_search(&mut rng, &a, &b, ParityPolicy::Ignore, 4);
                assert!(
                    heur.margin() <= exact.margin() + 1e-9,
                    "seed {seed} n {n}: heuristic {} > exact {}",
                    heur.margin(),
                    exact.margin()
                );
            }
        }
    }

    #[test]
    fn usually_finds_the_optimum_on_small_rings() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut optimal = 0usize;
        let trials = 60;
        for seed in 0..trials {
            let (a, b) = delays(seed as u64, 7);
            let exact = case1(&a, &b, ParityPolicy::Ignore);
            let heur = case1_local_search(&mut rng, &a, &b, ParityPolicy::Ignore, 8);
            if (heur.margin() - exact.margin()).abs() < 1e-9 {
                optimal += 1;
            }
        }
        assert!(
            optimal * 10 >= trials * 9,
            "optimal only {optimal}/{trials}"
        );
    }

    #[test]
    fn force_odd_yields_odd_counts() {
        let mut rng = StdRng::seed_from_u64(3);
        for seed in 0..20 {
            let (a, b) = delays(seed, 9);
            let s = case1_local_search(&mut rng, &a, &b, ParityPolicy::ForceOdd, 4);
            assert!(s.config().oscillates(), "seed {seed}");
        }
    }

    #[test]
    fn more_restarts_do_not_hurt() {
        let (a, b) = delays(11, 15);
        let mut rng1 = StdRng::seed_from_u64(4);
        let mut rng2 = StdRng::seed_from_u64(4);
        let one = case1_local_search(&mut rng1, &a, &b, ParityPolicy::Ignore, 1);
        let many = case1_local_search(&mut rng2, &a, &b, ParityPolicy::Ignore, 16);
        assert!(many.margin() >= one.margin() - 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one restart")]
    fn zero_restarts_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = case1_local_search(&mut rng, &[1.0], &[2.0], ParityPolicy::Ignore, 0);
    }
}
