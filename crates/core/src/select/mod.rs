//! §III.D — the inverter selection problem.
//!
//! Given per-stage delays `α` (top ring) and `β` (bottom ring), choose
//! configuration vectors maximizing the delay difference between the two
//! configured rings:
//!
//! * [`case1`] — both rings share one configuration vector,
//! * [`case2`] — independent vectors constrained to equal selected
//!   counts (the paper's security argument: unequal counts would leak
//!   which ring is likely faster),
//! * `brute` — exhaustive oracles used by the test suite to prove both
//!   algorithms optimal,
//! * [`case1_local_search`] — a restart hill-climbing heuristic kept for
//!   comparison: what a practitioner without §III.D's closed form would
//!   write,
//! * [`case1_multi_corner`] / [`case2_multi_corner`] — the same two
//!   problems under the min-margin-across-corners objective: maximize
//!   the margin at the *worst* V/T corner of a [`CornerDelays`] set
//!   (single-corner inputs reduce exactly to the solvers above).
//!
//! Both solvers accept a [`ParityPolicy`](crate::config::ParityPolicy);
//! `ForceOdd` restricts to
//! selections that oscillate as rings.

mod brute;
mod case1;
mod case2;
mod local_search;
mod multi_corner;

pub use brute::{brute_force_case1, brute_force_case2};
pub use case1::{case1, case1_with_offset};
pub use case2::{case2, case2_with_offset};
pub use local_search::case1_local_search;
pub use multi_corner::{
    case1_local_search_multi, case1_multi_corner, case2_multi_corner, CornerDelays,
};

use crate::config::ConfigVector;

/// Result of a Case-1 (shared-configuration) selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    config: ConfigVector,
    margin: f64,
    top_is_slower: bool,
}

impl Selection {
    pub(crate) fn new(config: ConfigVector, margin: f64, top_is_slower: bool) -> Self {
        debug_assert!(margin >= 0.0, "selection margin must be non-negative");
        Self {
            config,
            margin,
            top_is_slower,
        }
    }

    /// The shared configuration vector applied to both rings.
    pub fn config(&self) -> &ConfigVector {
        &self.config
    }

    /// The achieved delay-difference magnitude `|Σ Δd_i x_i|` — the
    /// reliability margin of the PUF bit.
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// The enrolled PUF bit: `true` when the configured top ring is
    /// slower than the bottom ring.
    ///
    /// When the selection is [degenerate](Self::is_degenerate) the two
    /// rings tie exactly and this returns the conventional `false` —
    /// check `is_degenerate()` before treating the bit as entropy.
    pub fn bit(&self) -> bool {
        self.top_is_slower
    }

    /// Whether the achieved margin is exactly zero: the configured
    /// rings tie, so [`bit`](Self::bit) is a convention (always
    /// `false`), not a silicon signature. Reliability metrics and
    /// fleet statistics should exclude or down-weight such pairs.
    pub fn is_degenerate(&self) -> bool {
        self.margin == 0.0
    }
}

/// Result of a Case-2 (independent-configuration) selection.
#[derive(Debug, Clone, PartialEq)]
pub struct PairSelection {
    top: ConfigVector,
    bottom: ConfigVector,
    margin: f64,
    top_is_slower: bool,
}

impl PairSelection {
    pub(crate) fn new(
        top: ConfigVector,
        bottom: ConfigVector,
        margin: f64,
        top_is_slower: bool,
    ) -> Self {
        debug_assert!(margin >= 0.0, "selection margin must be non-negative");
        debug_assert_eq!(
            top.selected_count(),
            bottom.selected_count(),
            "case-2 selections must use equal counts"
        );
        Self {
            top,
            bottom,
            margin,
            top_is_slower,
        }
    }

    /// Configuration vector of the top ring.
    pub fn top(&self) -> &ConfigVector {
        &self.top
    }

    /// Configuration vector of the bottom ring.
    pub fn bottom(&self) -> &ConfigVector {
        &self.bottom
    }

    /// The achieved delay-difference magnitude.
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// The enrolled PUF bit: `true` when the configured top ring is
    /// slower than the bottom ring.
    ///
    /// When the selection is [degenerate](Self::is_degenerate) the two
    /// rings tie exactly (`D = 0`, e.g. constant rings) and the strict
    /// `D > 0` comparison resolves to `false` by convention — without
    /// [`is_degenerate`](Self::is_degenerate) such pairs silently
    /// biased downstream statistics toward 0.
    pub fn bit(&self) -> bool {
        self.top_is_slower
    }

    /// Whether the achieved margin is exactly zero: the optimal
    /// configurations tie, so [`bit`](Self::bit) carries no silicon
    /// signature. Callers computing reliability or uniqueness figures
    /// should exclude or down-weight degenerate pairs instead of
    /// counting their conventional 0 bits as entropy.
    pub fn is_degenerate(&self) -> bool {
        self.margin == 0.0
    }

    /// The 2n-bit combined `top ‖ bottom` vector used by the paper's
    /// Table IV configuration-uniqueness analysis.
    pub fn combined_config(&self) -> ConfigVector {
        self.top.concat(&self.bottom)
    }
}

/// Validates the delay-vector inputs shared by every solver.
///
/// # Panics
///
/// Panics if the slices are empty, of different lengths, or contain
/// non-finite values.
pub(crate) fn validate_inputs(alpha: &[f64], beta: &[f64]) {
    assert!(!alpha.is_empty(), "delay vectors must be non-empty");
    assert_eq!(
        alpha.len(),
        beta.len(),
        "top and bottom rings must have the same number of stages"
    );
    for (name, v) in [("alpha", alpha), ("beta", beta)] {
        assert!(
            v.iter().all(|x| x.is_finite()),
            "{name} contains a non-finite delay"
        );
    }
}
