//! The 1-out-of-8 RO PUF baseline (Suh & Devadas, DAC 2007).
//!
//! Eight rings form a group; enrollment picks the *fastest* and *slowest*
//! rings of the group — the pair with the maximum delay separation — and
//! the bit is which of the two (by position) is faster. The huge margin
//! makes bits essentially flip-free across environment corners, at the
//! cost of 8 rings per bit versus 2 for the traditional/configurable
//! schemes (25 % hardware utilization, the paper's Table V).

use rand::Rng;
use ropuf_num::bits::BitVec;
use ropuf_silicon::{Board, DelayProbe, Environment, Technology};

use crate::config::ConfigVector;

/// A group of eight equally sized rings, described by the unit indices of
/// each ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoGroup {
    rings: [Vec<usize>; 8],
}

impl RoGroup {
    /// Builds a group from eight rings.
    ///
    /// # Panics
    ///
    /// Panics if the rings are empty or differ in length.
    pub fn new(rings: [Vec<usize>; 8]) -> Self {
        let len = rings[0].len();
        assert!(len > 0, "rings need at least one stage");
        assert!(
            rings.iter().all(|r| r.len() == len),
            "all eight rings must be equally sized"
        );
        Self { rings }
    }

    /// Stages per ring.
    pub fn stages(&self) -> usize {
        self.rings[0].len()
    }

    /// The unit indices of ring `i` (`i < 8`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn ring(&self, i: usize) -> &[usize] {
        &self.rings[i]
    }

    fn ring_delay<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &Board,
        tech: &Technology,
        env: Environment,
        probe: &DelayProbe,
        i: usize,
    ) -> f64 {
        let config = ConfigVector::all_selected(self.stages());
        let ro = crate::ro::ConfigurableRo::try_new(board, self.rings[i].clone())
            .expect("group rings fit the board");
        probe.measure_ps(rng, ro.ring_delay_ps(&config, env, tech))
    }
}

/// A 1-out-of-8 PUF floorplan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneOfEightPuf {
    groups: Vec<RoGroup>,
}

impl OneOfEightPuf {
    /// Builds from explicit groups.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn new(groups: Vec<RoGroup>) -> Self {
        assert!(!groups.is_empty(), "a PUF needs at least one group");
        Self { groups }
    }

    /// Tiles `total_units` into consecutive groups of eight
    /// `stages`-per-ring rings (`⌊total / 8·stages⌋` groups).
    ///
    /// # Panics
    ///
    /// Panics if fewer than one group fits.
    pub fn tiled(total_units: usize, stages: usize) -> Self {
        assert!(stages > 0, "rings need at least one stage");
        let groups = total_units / (8 * stages);
        assert!(
            groups > 0,
            "{total_units} units cannot host an 8-ring group"
        );
        Self::new(
            (0..groups)
                .map(|g| {
                    let base = g * 8 * stages;
                    RoGroup::new(std::array::from_fn(|r| {
                        (base + r * stages..base + (r + 1) * stages).collect()
                    }))
                })
                .collect(),
        )
    }

    /// The groups of the floorplan.
    pub fn groups(&self) -> &[RoGroup] {
        &self.groups
    }

    /// Number of groups (= bits).
    pub fn bit_capacity(&self) -> usize {
        self.groups.len()
    }

    /// Enrolls: measures all eight rings per group and records the
    /// indices of the fastest and slowest rings plus the expected bit.
    pub fn enroll<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &Board,
        tech: &Technology,
        env: Environment,
        probe: &DelayProbe,
    ) -> OneOfEightEnrollment {
        let picks = self
            .groups
            .iter()
            .map(|group| {
                let delays: Vec<f64> = (0..8)
                    .map(|i| group.ring_delay(rng, board, tech, env, probe, i))
                    .collect();
                let (fast, _) = delays
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .expect("eight rings");
                let (slow, _) = delays
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .expect("eight rings");
                let (a, b) = (fast.min(slow), fast.max(slow));
                GroupPick {
                    group: group.clone(),
                    ring_a: a,
                    ring_b: b,
                    expected_bit: delays[a] > delays[b],
                    margin_ps: (delays[fast] - delays[slow]).abs(),
                }
            })
            .collect();
        OneOfEightEnrollment { picks }
    }
}

/// One enrolled group: the chosen ring pair and expected bit.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupPick {
    group: RoGroup,
    ring_a: usize,
    ring_b: usize,
    expected_bit: bool,
    margin_ps: f64,
}

impl GroupPick {
    /// Index (0–7) of the lower-positioned chosen ring.
    pub fn ring_a(&self) -> usize {
        self.ring_a
    }

    /// Index (0–7) of the higher-positioned chosen ring.
    pub fn ring_b(&self) -> usize {
        self.ring_b
    }

    /// Bit recorded at enrollment (`true` = ring A slower than ring B).
    pub fn expected_bit(&self) -> bool {
        self.expected_bit
    }

    /// Delay separation between the chosen rings at enrollment,
    /// picoseconds.
    pub fn margin_ps(&self) -> f64 {
        self.margin_ps
    }
}

/// An enrolled 1-out-of-8 PUF.
#[derive(Debug, Clone, PartialEq)]
pub struct OneOfEightEnrollment {
    picks: Vec<GroupPick>,
}

impl OneOfEightEnrollment {
    /// Per-group picks.
    pub fn picks(&self) -> &[GroupPick] {
        &self.picks
    }

    /// Number of bits.
    pub fn bit_count(&self) -> usize {
        self.picks.len()
    }

    /// Bits recorded at enrollment.
    pub fn expected_bits(&self) -> BitVec {
        self.picks.iter().map(GroupPick::expected_bit).collect()
    }

    /// Margins at enrollment, picoseconds.
    pub fn margins_ps(&self) -> Vec<f64> {
        self.picks.iter().map(GroupPick::margin_ps).collect()
    }

    /// Generates a response at `env`: re-measures only the two chosen
    /// rings per group.
    pub fn respond<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &Board,
        tech: &Technology,
        env: Environment,
        probe: &DelayProbe,
    ) -> BitVec {
        self.picks
            .iter()
            .map(|p| {
                let da = p.group.ring_delay(rng, board, tech, env, probe, p.ring_a);
                let db = p.group.ring_delay(rng, board, tech, env, probe, p.ring_b);
                da > db
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_silicon::board::BoardId;
    use ropuf_silicon::SiliconSim;

    fn setup(units: usize) -> (Board, Technology, StdRng) {
        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(55);
        let board = sim.grow_board_with_id(&mut rng, BoardId(0), units, 16);
        (board, *sim.technology(), rng)
    }

    #[test]
    fn tiled_group_geometry() {
        let puf = OneOfEightPuf::tiled(240, 5);
        assert_eq!(puf.bit_capacity(), 6);
        let g = &puf.groups()[1];
        assert_eq!(g.stages(), 5);
        assert_eq!(g.ring(0), &[40, 41, 42, 43, 44]);
        assert_eq!(g.ring(7), &[75, 76, 77, 78, 79]);
    }

    #[test]
    fn quarter_of_traditional_capacity() {
        // Table V: the 1-out-of-8 scheme yields 1/4 of the bits.
        for n in [3, 5] {
            let one8 = OneOfEightPuf::tiled(480, n);
            let trad = crate::traditional::TraditionalRoPuf::tiled(480, n);
            assert_eq!(one8.bit_capacity() * 4, trad.pair_count());
        }
    }

    #[test]
    fn enrollment_picks_extremes() {
        let (board, tech, mut rng) = setup(120);
        let puf = OneOfEightPuf::tiled(120, 3);
        let env = Environment::nominal();
        let e = puf.enroll(&mut rng, &board, &tech, env, &DelayProbe::noiseless());
        for (pick, group) in e.picks().iter().zip(puf.groups()) {
            let config = ConfigVector::all_selected(3);
            let delays: Vec<f64> = (0..8)
                .map(|i| {
                    crate::ro::ConfigurableRo::try_new(&board, group.ring(i).to_vec())
                        .unwrap()
                        .ring_delay_ps(&config, env, &tech)
                })
                .collect();
            let max = delays.iter().cloned().fold(f64::MIN, f64::max);
            let min = delays.iter().cloned().fold(f64::MAX, f64::min);
            assert!((pick.margin_ps() - (max - min)).abs() < 1e-9);
        }
    }

    #[test]
    fn noiseless_response_reproduces_enrollment() {
        let (board, tech, mut rng) = setup(240);
        let puf = OneOfEightPuf::tiled(240, 5);
        let env = Environment::nominal();
        let e = puf.enroll(&mut rng, &board, &tech, env, &DelayProbe::noiseless());
        let r = e.respond(&mut rng, &board, &tech, env, &DelayProbe::noiseless());
        assert_eq!(r, e.expected_bits());
    }

    #[test]
    fn margins_dwarf_traditional() {
        let (board, tech, _) = setup(240);
        let env = Environment::nominal();
        let mut r1 = StdRng::seed_from_u64(2);
        let mut r2 = StdRng::seed_from_u64(2);
        let one8 = OneOfEightPuf::tiled(240, 5).enroll(
            &mut r1,
            &board,
            &tech,
            env,
            &DelayProbe::noiseless(),
        );
        let trad = crate::traditional::TraditionalRoPuf::tiled(240, 5).enroll(
            &mut r2,
            &board,
            &tech,
            env,
            &DelayProbe::noiseless(),
            0.0,
        );
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&one8.margins_ps()) > 2.0 * mean(&trad.margins_ps()));
    }

    #[test]
    fn stable_across_environment_corners() {
        let (board, tech, mut rng) = setup(240);
        let puf = OneOfEightPuf::tiled(240, 5);
        let e = puf.enroll(
            &mut rng,
            &board,
            &tech,
            Environment::nominal(),
            &DelayProbe::noiseless(),
        );
        let probe = DelayProbe::new(0.25, 1);
        for env in Environment::voltage_sweep(25.0) {
            let r = e.respond(&mut rng, &board, &tech, env, &probe);
            assert_eq!(r, e.expected_bits(), "flips at {env}");
        }
    }

    #[test]
    #[should_panic(expected = "equally sized")]
    fn ragged_group_panics() {
        let _ = RoGroup::new([
            vec![0],
            vec![1],
            vec![2],
            vec![3],
            vec![4],
            vec![5],
            vec![6],
            vec![7, 8],
        ]);
    }
}
