#![warn(missing_docs)]

//! The configurable inverter-level ring-oscillator PUF of
//! *"A Highly Flexible Ring Oscillator PUF"* (Gao, Lai & Qu, DAC 2014).
//!
//! A classic RO PUF compares two identically laid-out ring oscillators and
//! emits one bit from the sign of their frequency difference. This crate
//! implements the paper's refinement: build the ring at **inverter
//! granularity**, measure per-stage delay differences post-silicon, and
//! *choose which inverters participate* so the delay difference between
//! the two rings — the reliability margin of the bit — is maximized.
//!
//! The crate is organized along the paper's sections:
//!
//! * [`config`] — configuration vectors (the MUX selection bits) and the
//!   odd-parity oscillation policy,
//! * [`calibrate`] — §III.B: recovering per-unit `ddiff` values from
//!   whole-ring measurements (the 3-stage X/Y/Z solve and the generalized
//!   leave-one-out scheme),
//! * [`select`] — §III.D: the Case-1 (shared configuration) and Case-2
//!   (independent configurations) inverter-selection algorithms, plus a
//!   brute-force oracle,
//! * [`ro`] — configurable rings over simulated silicon,
//! * [`puf`] — the end-to-end enrollment/response pipeline,
//! * [`fleet`] — the parallel fleet enrollment/evaluation engine, with
//!   deterministic per-board seed splitting,
//! * [`monitor`] — the fleet health observatory: §IV's quality figures
//!   sampled as classified gauges with drift detection,
//! * [`reenroll`] — drift-triggered re-enrollment: multi-corner
//!   selection re-run on aged silicon, accepted only when it beats the
//!   old configuration's worst-corner margin,
//! * [`error`] — the unified [`Error`] type every fallible entry point
//!   returns,
//! * [`traditional`] / [`one_of_eight`] / [`cooperative`] — the
//!   baselines the paper compares against (§II),
//! * [`distill`] — the regression-based distiller (Yin & Qu, DAC'13) that
//!   removes systematic variation before bit extraction,
//! * [`budget`] — Table V's bits-per-board accounting,
//! * [`crp`] — challenge-response operation of a *reconfigurable*
//!   deployment and the linear modeling attack that breaks it (the
//!   security argument for the paper's fixed configurations),
//! * [`fuzzy`] — a repetition-code fuzzy extractor, the ECC machinery
//!   whose cost the configurable PUF's margins avoid,
//! * [`lifecycle`] — the typestate enrollment lifecycle
//!   (`Device<Started> → Device<Enrolled>`, opaque [`lifecycle::KeyCode`])
//!   that deployments drive instead of the free functions.
//!
//! # Examples
//!
//! Select inverters for a pair of rings from measured per-stage delays:
//!
//! ```
//! use ropuf_core::select::{case1, case2};
//! use ropuf_core::config::ParityPolicy;
//!
//! let top =    [101.0, 99.5, 100.2, 98.9, 101.8];
//! let bottom = [100.1, 100.4, 99.8, 100.6, 99.2];
//! let shared = case1(&top, &bottom, ParityPolicy::Ignore);
//! let split = case2(&top, &bottom, ParityPolicy::Ignore);
//! // Independent configurations can only widen the margin.
//! assert!(split.margin() >= shared.margin());
//! ```

pub mod budget;
pub mod calibrate;
pub mod config;
pub mod cooperative;
pub mod crp;
pub mod distill;
pub mod error;
pub mod fleet;
pub mod fuzzy;
pub mod lifecycle;
pub mod monitor;
pub mod one_of_eight;
pub mod persist;
pub mod puf;
pub mod reenroll;
pub mod ro;
pub mod robust;
pub mod select;
pub mod traditional;

pub use config::{ConfigVector, ParityPolicy};
pub use error::Error;
pub use fleet::{
    split_seed, FleetAging, FleetConfig, FleetEngine, FleetRun, Quarantine, QuarantineReason,
};
pub use lifecycle::{Device, Enrolled, KeyCode, Started};
pub use monitor::{FleetHealth, FleetObservatory, MonitorConfig, SweepPlan};
pub use puf::BoundEnrollment;
pub use reenroll::{DriftAssessment, ReenrollOutcome, ReenrollPolicy, ReenrollRejected};
pub use robust::{FaultPlan, FaultSummary, RobustOptions};
pub use select::{case1, case2, PairSelection, Selection};
