//! Plain-text persistence for enrollments.
//!
//! An [`Enrollment`] is exactly the helper data a verifier stores per
//! device: which units form each ring pair, the chosen configurations,
//! the expected bit, and the margin. This module round-trips it through
//! a line-oriented text format with no serialization dependencies.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use ropuf_core::persist::{enrollment_from_text, enrollment_to_text};
//! use ropuf_core::puf::{ConfigurableRoPuf, EnrollOptions};
//! use ropuf_silicon::board::BoardId;
//! use ropuf_silicon::{Environment, SiliconSim};
//!
//! let sim = SiliconSim::default_spartan();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let board = sim.grow_board_with_id(&mut rng, BoardId(0), 40, 8);
//! let enrollment = ConfigurableRoPuf::tiled(40, 5).enroll(
//!     &mut rng, &board, sim.technology(),
//!     Environment::nominal(), &EnrollOptions::default(),
//! );
//! let text = enrollment_to_text(&enrollment);
//! assert_eq!(enrollment_from_text(&text)?, enrollment);
//! # Ok::<(), ropuf_core::persist::ParseEnrollmentError>(())
//! ```

use std::fmt;

use ropuf_silicon::Environment;

use crate::config::ConfigVector;
use crate::error::Error;
use crate::puf::{EnrolledPair, Enrollment, PairSpec};

/// First line of the format, bumped on breaking changes.
pub const HEADER: &str = "ropuf-enrollment v1";

/// Magic prefix of the versioned binary envelope.
pub const MAGIC: &[u8; 4] = b"ROPF";

/// Newest envelope version this build writes and reads.
pub const FORMAT_VERSION: u16 = 1;

/// Serializes an enrollment to the portable text format.
pub fn enrollment_to_text(enrollment: &Enrollment) -> String {
    let env = enrollment.enrolled_at();
    let mut out = format!("{HEADER}\nenv,{},{}\n", env.voltage_v, env.temperature_c);
    for (i, pair) in enrollment.pairs().iter().enumerate() {
        match pair {
            None => out.push_str(&format!("pair,{i},excluded\n")),
            Some(p) => {
                let join = |units: &[usize]| -> String {
                    units
                        .iter()
                        .map(usize::to_string)
                        .collect::<Vec<_>>()
                        .join(";")
                };
                out.push_str(&format!(
                    "pair,{i},{},{},{},{},{},{}\n",
                    join(p.spec().top()),
                    join(p.spec().bottom()),
                    p.top_config(),
                    p.bottom_config(),
                    u8::from(p.expected_bit()),
                    p.margin_ps(),
                ));
            }
        }
    }
    out
}

/// Parses an enrollment from the portable text format.
///
/// # Errors
///
/// Returns [`ParseEnrollmentError`] describing the first offending line.
pub fn enrollment_from_text(text: &str) -> Result<Enrollment, ParseEnrollmentError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        _ => return Err(err(1, format!("expected header {HEADER:?}"))),
    }
    let (line_no, env_line) = lines.next().ok_or_else(|| err(2, "missing env line"))?;
    let env = parse_env(env_line, line_no + 1)?;

    let mut pairs: Vec<Option<EnrolledPair>> = Vec::new();
    for (i, line) in lines {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.first() != Some(&"pair") {
            return Err(err(line_no, "expected a pair line"));
        }
        let index: usize = parse(&fields, 1, line_no, "index")?;
        if index != pairs.len() {
            return Err(err(line_no, format!("pair index {index} out of order")));
        }
        if fields.get(2) == Some(&"excluded") {
            pairs.push(None);
            continue;
        }
        if fields.len() != 8 {
            return Err(err(line_no, "pair line needs 8 comma-separated fields"));
        }
        let units = |idx: usize| -> Result<Vec<usize>, ParseEnrollmentError> {
            fields[idx]
                .split(';')
                .map(|u| {
                    u.parse::<usize>()
                        .map_err(|_| err(line_no, format!("bad unit index {u:?}")))
                })
                .collect()
        };
        let config = |idx: usize| -> Result<ConfigVector, ParseEnrollmentError> {
            let bits = ropuf_num::bits::BitVec::from_binary_str(fields[idx])
                .map_err(|e| err(line_no, format!("bad configuration: {e}")))?;
            Ok(ConfigVector::from_flags(&bits.to_bools()))
        };
        let spec = PairSpec::try_new(units(2)?, units(3)?)
            .map_err(|e| err(line_no, format!("bad pair layout: {e}")))?;
        let top_config = config(4)?;
        let bottom_config = config(5)?;
        if top_config.len() != spec.stages() || bottom_config.len() != spec.stages() {
            return Err(err(line_no, "configuration length does not match the pair"));
        }
        let bit: u8 = parse(&fields, 6, line_no, "bit")?;
        if bit > 1 {
            return Err(err(line_no, "bit must be 0 or 1"));
        }
        let margin: f64 = parse(&fields, 7, line_no, "margin")?;
        if !(margin.is_finite() && margin >= 0.0) {
            return Err(err(line_no, "margin must be finite and non-negative"));
        }
        pairs.push(Some(EnrolledPair::from_parts(
            spec,
            top_config,
            bottom_config,
            bit == 1,
            margin,
        )));
    }
    if pairs.is_empty() {
        return Err(err(1, "enrollment contains no pairs"));
    }
    Ok(Enrollment::from_parts(pairs, env))
}

/// Serializes an enrollment to the versioned binary envelope: the
/// [`MAGIC`] prefix, a little-endian u16 [`FORMAT_VERSION`], then the
/// text format as the payload.
///
/// This is the form the enrollment server stores on disk — the version
/// field lets the store evolve without silently misreading old records.
pub fn enrollment_to_bytes(enrollment: &Enrollment) -> Vec<u8> {
    let text = enrollment_to_text(enrollment);
    let mut out = Vec::with_capacity(MAGIC.len() + 2 + text.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(text.as_bytes());
    out
}

/// Parses an enrollment from the versioned binary envelope.
///
/// # Errors
///
/// [`Error::Parse`] when the magic is missing or the payload is
/// malformed; [`Error::UnsupportedVersion`] when the version field was
/// written by an incompatible format revision.
pub fn enrollment_from_bytes(bytes: &[u8]) -> Result<Enrollment, Error> {
    let header = MAGIC.len() + 2;
    if bytes.len() < header || &bytes[..MAGIC.len()] != MAGIC {
        return Err(Error::Parse(err(1, "missing ROPF envelope magic")));
    }
    let version = u16::from_le_bytes([bytes[MAGIC.len()], bytes[MAGIC.len() + 1]]);
    if version != FORMAT_VERSION {
        return Err(Error::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let text = std::str::from_utf8(&bytes[header..])
        .map_err(|_| Error::Parse(err(1, "envelope payload is not UTF-8")))?;
    enrollment_from_text(text).map_err(Error::from)
}

fn parse_env(line: &str, line_no: usize) -> Result<Environment, ParseEnrollmentError> {
    let fields: Vec<&str> = line.split(',').collect();
    if fields.first() != Some(&"env") {
        return Err(err(line_no, "expected the env line"));
    }
    let v: f64 = parse(&fields, 1, line_no, "voltage")?;
    let t: f64 = parse(&fields, 2, line_no, "temperature")?;
    if !(v.is_finite() && v > 0.0 && t.is_finite()) {
        return Err(err(line_no, "invalid operating point"));
    }
    Ok(Environment::new(v, t))
}

fn parse<T: std::str::FromStr>(
    fields: &[&str],
    idx: usize,
    line_no: usize,
    name: &str,
) -> Result<T, ParseEnrollmentError> {
    fields
        .get(idx)
        .ok_or_else(|| err(line_no, format!("missing field {name}")))?
        .trim()
        .parse::<T>()
        .map_err(|_| err(line_no, format!("field {name} is malformed")))
}

fn err(line: usize, message: impl Into<String>) -> ParseEnrollmentError {
    ParseEnrollmentError {
        line,
        message: message.into(),
    }
}

/// Error from [`enrollment_from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEnrollmentError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseEnrollmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "enrollment parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseEnrollmentError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::puf::{ConfigurableRoPuf, EnrollOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_silicon::board::BoardId;
    use ropuf_silicon::{DelayProbe, SiliconSim};

    fn sample(threshold: f64) -> (Enrollment, ropuf_silicon::Board, ropuf_silicon::Technology) {
        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(3);
        let board = sim.grow_board_with_id(&mut rng, BoardId(0), 60, 10);
        let e = ConfigurableRoPuf::tiled_interleaved(60, 5).enroll(
            &mut rng,
            &board,
            sim.technology(),
            Environment::nominal(),
            &EnrollOptions {
                threshold_ps: threshold,
                ..EnrollOptions::default()
            },
        );
        (e, board, *sim.technology())
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (e, _, _) = sample(0.0);
        let text = enrollment_to_text(&e);
        assert!(text.starts_with(HEADER));
        let back = enrollment_from_text(&text).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn round_trip_with_excluded_pairs() {
        // Threshold at the median margin so roughly half the pairs are
        // excluded regardless of the silicon draw.
        let (all, _, _) = sample(0.0);
        let mut margins = all.margins_ps();
        margins.sort_by(f64::total_cmp);
        let (e, _, _) = sample(margins[margins.len() / 2] + 1e-9);
        assert!(
            e.pairs().iter().any(Option::is_none),
            "want some exclusions"
        );
        assert!(e.pairs().iter().any(Option::is_some), "want some survivors");
        let back = enrollment_from_text(&enrollment_to_text(&e)).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn reloaded_enrollment_responds_identically() {
        let (e, board, tech) = sample(0.0);
        let back = enrollment_from_text(&enrollment_to_text(&e)).unwrap();
        let probe = DelayProbe::noiseless();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = e.respond(&mut r1, &board, &tech, Environment::nominal(), &probe);
        let b = back.respond(&mut r2, &board, &tech, Environment::nominal(), &probe);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_header() {
        let e = enrollment_from_text("nope\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("header"));
    }

    #[test]
    fn rejects_missing_env() {
        let e = enrollment_from_text(HEADER).unwrap_err();
        assert!(e.message.contains("env"));
    }

    #[test]
    fn rejects_out_of_order_pairs() {
        let text = format!("{HEADER}\nenv,1.2,25\npair,1,excluded\n");
        let e = enrollment_from_text(&text).unwrap_err();
        assert!(e.message.contains("out of order"));
    }

    #[test]
    fn rejects_config_length_mismatch() {
        let text = format!("{HEADER}\nenv,1.2,25\npair,0,0;1,2;3,101,10,1,5.0\n");
        let e = enrollment_from_text(&text).unwrap_err();
        assert!(e.message.contains("length"), "{e}");
    }

    #[test]
    fn rejects_bad_bit_and_margin() {
        let text = format!("{HEADER}\nenv,1.2,25\npair,0,0;1,2;3,10,01,2,5.0\n");
        assert!(enrollment_from_text(&text)
            .unwrap_err()
            .message
            .contains("0 or 1"));
        let text = format!("{HEADER}\nenv,1.2,25\npair,0,0;1,2;3,10,01,1,-2.0\n");
        assert!(enrollment_from_text(&text)
            .unwrap_err()
            .message
            .contains("non-negative"));
    }

    #[test]
    fn envelope_round_trip_preserves_everything() {
        let (e, _, _) = sample(0.0);
        let bytes = enrollment_to_bytes(&e);
        assert_eq!(&bytes[..4], MAGIC);
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), FORMAT_VERSION);
        assert_eq!(enrollment_from_bytes(&bytes).unwrap(), e);
    }

    #[test]
    fn envelope_rejects_bytes_from_other_versions() {
        let (e, _, _) = sample(0.0);
        let mut bytes = enrollment_to_bytes(&e);
        // A future (or ancient) writer: same magic, different version.
        bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
        match enrollment_from_bytes(&bytes).unwrap_err() {
            Error::UnsupportedVersion { found, supported } => {
                assert_eq!(found, 7);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // Version 0 — bytes that predate the envelope scheme.
        bytes[4..6].copy_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            enrollment_from_bytes(&bytes),
            Err(Error::UnsupportedVersion { found: 0, .. })
        ));
    }

    #[test]
    fn envelope_rejects_missing_magic_and_truncation() {
        let (e, _, _) = sample(0.0);
        let bytes = enrollment_to_bytes(&e);
        // Bare text (the pre-envelope format) is not an envelope.
        let bare = enrollment_to_text(&e);
        assert!(matches!(
            enrollment_from_bytes(bare.as_bytes()),
            Err(Error::Parse(_))
        ));
        // Shorter than the header.
        assert!(matches!(
            enrollment_from_bytes(&bytes[..3]),
            Err(Error::Parse(_))
        ));
        // Magic present but payload garbled.
        let mut garbled = bytes[..6].to_vec();
        garbled.extend_from_slice(b"\xff\xfe not text");
        assert!(matches!(
            enrollment_from_bytes(&garbled),
            Err(Error::Parse(_))
        ));
    }

    #[test]
    fn rejects_empty_enrollment() {
        let text = format!("{HEADER}\nenv,1.2,25\n");
        assert!(enrollment_from_text(&text)
            .unwrap_err()
            .message
            .contains("no pairs"));
    }
}
