//! Challenge-response operation and the modeling attack against it.
//!
//! §II of the paper distinguishes its *configurable* PUF (configuration
//! fixed once at enrollment) from *reconfigurable* PUFs that accept the
//! configuration as a runtime challenge: "Although these approaches can
//! achieve more challenge-response pairs, they also expose more
//! information and thus are vulnerable to attacks such as modeling and
//! machine learning."
//!
//! This module makes that argument concrete. [`Challenge`] treats a
//! configuration pair as a challenge and [`respond`] evaluates the bit a
//! reconfigurable deployment would emit. [`LinearDelayAttack`] then does
//! what an attacker would do: fit the obvious linear delay model
//! `bit = sign(w₀ + Σ wᵢ xᵢ − Σ vᵢ yᵢ)` to observed CRPs by least
//! squares and predict unseen challenges. A few hundred CRPs suffice for
//! near-perfect prediction (see the `modeling_attack` example) — which
//! is exactly why the paper freezes the configuration instead.

use rand::Rng;
use ropuf_num::linalg::Matrix;
use ropuf_silicon::{DelayProbe, Environment, Technology};

use crate::config::{ConfigVector, ParityPolicy};
use crate::error::Error;
use crate::ro::RoPair;

/// One challenge: a configuration for each ring of a pair, with equal
/// selected counts (the paper's structural constraint).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Challenge {
    top: ConfigVector,
    bottom: ConfigVector,
}

impl Challenge {
    /// Creates a challenge from two configurations.
    ///
    /// # Panics
    ///
    /// Panics if lengths or selected counts differ. Use [`try_new`] to
    /// validate untrusted (e.g. attacker- or wire-supplied) challenges
    /// without unwinding.
    ///
    /// [`try_new`]: Self::try_new
    #[deprecated(
        note = "use `Challenge::try_new` — wire-supplied challenges must be rejected, not unwound"
    )]
    pub fn new(top: ConfigVector, bottom: ConfigVector) -> Self {
        Self::try_new(top, bottom).expect("invalid challenge")
    }

    /// Creates a challenge from two configurations, rejecting malformed
    /// input instead of panicking.
    ///
    /// # Errors
    ///
    /// [`Error::Challenge`] when the configurations differ in length or
    /// in selected-stage count (the paper's structural constraint on a
    /// challenge).
    pub fn try_new(top: ConfigVector, bottom: ConfigVector) -> Result<Self, Error> {
        if top.len() != bottom.len() {
            return Err(Error::Challenge(format!(
                "configurations must be equally long, got {} and {}",
                top.len(),
                bottom.len()
            )));
        }
        if top.selected_count() != bottom.selected_count() {
            return Err(Error::Challenge(format!(
                "challenges must select equally many stages per ring, got {} and {}",
                top.selected_count(),
                bottom.selected_count()
            )));
        }
        Ok(Self { top, bottom })
    }

    /// Draws a uniform random challenge over `n` stages with equal
    /// selected counts (and an odd count under
    /// [`ParityPolicy::ForceOdd`]).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize, parity: ParityPolicy) -> Self {
        assert!(n > 0, "challenges need at least one stage");
        let count = loop {
            let k = rng.gen_range(0..=n);
            if parity.admits(k) {
                break k;
            }
        };
        let pick = |rng: &mut R| -> ConfigVector {
            // Floyd-style sampling of `count` distinct indices.
            let mut chosen = Vec::with_capacity(count);
            for j in n - count..n {
                let t = rng.gen_range(0..=j);
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            ConfigVector::from_selected(n, &chosen)
        };
        Self::try_new(pick(rng), pick(rng)).expect("random challenges are valid by construction")
    }

    /// The top ring's configuration.
    pub fn top(&self) -> &ConfigVector {
        &self.top
    }

    /// The bottom ring's configuration.
    pub fn bottom(&self) -> &ConfigVector {
        &self.bottom
    }

    /// Stages per ring.
    pub fn stages(&self) -> usize {
        self.top.len()
    }
}

/// Evaluates the response bit a reconfigurable deployment would emit for
/// `challenge` on `pair` at `env`: `true` when the configured top ring
/// measures slower.
pub fn respond<R: Rng + ?Sized>(
    rng: &mut R,
    pair: &RoPair<'_>,
    challenge: &Challenge,
    probe: &DelayProbe,
    env: Environment,
    tech: &Technology,
) -> bool {
    let d_top = probe.measure_ps(rng, pair.top().ring_delay_ps(challenge.top(), env, tech));
    let d_bottom = probe.measure_ps(
        rng,
        pair.bottom().ring_delay_ps(challenge.bottom(), env, tech),
    );
    d_top > d_bottom
}

/// A least-squares linear delay model of one ring pair, learned from
/// observed challenge-response pairs.
///
/// The model regresses the ±1 response on the feature vector
/// `[1, x₁…x_n, y₁…y_n]` and predicts with the sign of the fit — the
/// standard first-order attack on delay-based PUFs.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearDelayAttack {
    weights: Vec<f64>,
    stages: usize,
}

/// Errors from [`LinearDelayAttack::train`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// Fewer CRPs than model parameters (`2n + 1`).
    NotEnoughData {
        /// CRPs supplied.
        observed: usize,
        /// CRPs required.
        required: usize,
    },
    /// The training set does not span the feature space (e.g. all
    /// challenges identical).
    Degenerate,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NotEnoughData { observed, required } => {
                write!(f, "{observed} CRPs cannot fit a {required}-parameter model")
            }
            TrainError::Degenerate => write!(f, "training challenges are degenerate"),
        }
    }
}

impl std::error::Error for TrainError {}

impl LinearDelayAttack {
    /// Fits the model to observed CRPs.
    ///
    /// # Errors
    ///
    /// [`TrainError::NotEnoughData`] with fewer than `2n + 1` CRPs;
    /// [`TrainError::Degenerate`] if the challenges do not span the
    /// feature space.
    ///
    /// # Panics
    ///
    /// Panics if `challenges` and `responses` differ in length or the
    /// challenges differ in stage count.
    pub fn train(challenges: &[Challenge], responses: &[bool]) -> Result<Self, TrainError> {
        assert_eq!(
            challenges.len(),
            responses.len(),
            "one response per challenge"
        );
        let stages = challenges.first().map_or(0, Challenge::stages);
        let params = 2 * stages + 1;
        if challenges.len() < params {
            return Err(TrainError::NotEnoughData {
                observed: challenges.len(),
                required: params,
            });
        }
        let design = Matrix::from_fn(challenges.len(), params, |i, j| {
            features(&challenges[i], stages)[j]
        });
        let targets: Vec<f64> = responses
            .iter()
            .map(|&b| if b { 1.0 } else { -1.0 })
            .collect();
        // The equal-count constraint makes the stage columns exactly
        // collinear (their sum is the zero vector), so a whisker of
        // ridge regularization is required; it does not affect the
        // decision boundary.
        let weights = design
            .least_squares_ridge(&targets, 1e-6)
            .map_err(|_| TrainError::Degenerate)?;
        Ok(Self { weights, stages })
    }

    /// Predicts the response to a challenge.
    ///
    /// # Panics
    ///
    /// Panics if the challenge's stage count differs from the training
    /// data's.
    pub fn predict(&self, challenge: &Challenge) -> bool {
        assert_eq!(challenge.stages(), self.stages, "stage count mismatch");
        let f = features(challenge, self.stages);
        let score: f64 = self.weights.iter().zip(&f).map(|(w, x)| w * x).sum();
        score > 0.0
    }

    /// Prediction accuracy over a labelled test set.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or the test set is empty.
    pub fn accuracy(&self, challenges: &[Challenge], responses: &[bool]) -> f64 {
        assert_eq!(
            challenges.len(),
            responses.len(),
            "one response per challenge"
        );
        assert!(
            !challenges.is_empty(),
            "accuracy needs a non-empty test set"
        );
        let hits = challenges
            .iter()
            .zip(responses)
            .filter(|(c, &r)| self.predict(c) == r)
            .count();
        hits as f64 / challenges.len() as f64
    }

    /// The fitted weights `[w₀, w₁…w_n, v₁…v_n]` (intercept, top-stage,
    /// bottom-stage). The top weights approximate the top ring's stage
    /// delays up to affine transformation — the leak the attack exploits.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

fn features(challenge: &Challenge, stages: usize) -> Vec<f64> {
    let mut f = Vec::with_capacity(2 * stages + 1);
    f.push(1.0);
    for i in 0..stages {
        f.push(if challenge.top().is_selected(i) {
            1.0
        } else {
            0.0
        });
    }
    for i in 0..stages {
        f.push(if challenge.bottom().is_selected(i) {
            -1.0
        } else {
            0.0
        });
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_silicon::board::BoardId;
    use ropuf_silicon::SiliconSim;

    fn pair_and_tech(n: usize) -> (ropuf_silicon::Board, Technology) {
        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(3);
        (
            sim.grow_board_with_id(&mut rng, BoardId(0), 2 * n, n),
            *sim.technology(),
        )
    }

    #[test]
    fn random_challenges_have_equal_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = Challenge::random(&mut rng, 9, ParityPolicy::Ignore);
            assert_eq!(c.top().selected_count(), c.bottom().selected_count());
        }
    }

    #[test]
    fn force_odd_challenges_oscillate() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let c = Challenge::random(&mut rng, 8, ParityPolicy::ForceOdd);
            assert!(c.top().oscillates());
            assert!(c.bottom().oscillates());
        }
    }

    #[test]
    fn random_challenges_are_diverse() {
        let mut rng = StdRng::seed_from_u64(3);
        let cs: Vec<Challenge> = (0..50)
            .map(|_| Challenge::random(&mut rng, 12, ParityPolicy::Ignore))
            .collect();
        let distinct: std::collections::HashSet<_> = cs.iter().collect();
        assert!(distinct.len() > 40, "only {} distinct", distinct.len());
    }

    #[test]
    fn responses_are_deterministic_without_noise() {
        let n = 7;
        let (board, tech) = pair_and_tech(n);
        let pair = RoPair::split_range(&board, 0..2 * n);
        let mut rng = StdRng::seed_from_u64(4);
        let c = Challenge::random(&mut rng, n, ParityPolicy::Ignore);
        let probe = DelayProbe::noiseless();
        let env = Environment::nominal();
        let r1 = respond(&mut rng, &pair, &c, &probe, env, &tech);
        let r2 = respond(&mut rng, &pair, &c, &probe, env, &tech);
        assert_eq!(r1, r2);
    }

    #[test]
    fn attack_learns_the_pair() {
        let n = 11;
        let (board, tech) = pair_and_tech(n);
        let pair = RoPair::split_range(&board, 0..2 * n);
        let mut rng = StdRng::seed_from_u64(5);
        let probe = DelayProbe::noiseless();
        let env = Environment::nominal();
        let crps: Vec<(Challenge, bool)> = (0..600)
            .map(|_| {
                let c = Challenge::random(&mut rng, n, ParityPolicy::Ignore);
                let r = respond(&mut rng, &pair, &c, &probe, env, &tech);
                (c, r)
            })
            .collect();
        let (train, test) = crps.split_at(300);
        let (tc, tr): (Vec<_>, Vec<_>) = train.iter().cloned().unzip();
        let model = LinearDelayAttack::train(&tc, &tr).expect("enough data");
        let (xc, xr): (Vec<_>, Vec<_>) = test.iter().cloned().unzip();
        let acc = model.accuracy(&xc, &xr);
        assert!(acc > 0.9, "attack accuracy {acc}");
        assert_eq!(model.weights().len(), 2 * n + 1);
    }

    #[test]
    fn attack_needs_enough_data() {
        let mut rng = StdRng::seed_from_u64(6);
        let cs: Vec<Challenge> = (0..5)
            .map(|_| Challenge::random(&mut rng, 9, ParityPolicy::Ignore))
            .collect();
        let rs = vec![true; 5];
        let err = LinearDelayAttack::train(&cs, &rs).unwrap_err();
        assert_eq!(
            err,
            TrainError::NotEnoughData {
                observed: 5,
                required: 19
            }
        );
        assert!(err.to_string().contains("19-parameter"));
    }

    #[test]
    fn degenerate_training_set_learns_only_the_constant() {
        // With ridge regularization a rank-deficient training set still
        // trains, but all it can learn is the constant answer: the
        // training challenge predicts correctly, everything else is
        // uninformed.
        let mut rng = StdRng::seed_from_u64(7);
        let c = Challenge::random(&mut rng, 4, ParityPolicy::Ignore);
        let cs = vec![c.clone(); 20];
        let rs = vec![true; 20];
        let model = LinearDelayAttack::train(&cs, &rs).expect("ridge keeps this solvable");
        assert!(model.predict(&c));
    }

    #[test]
    #[should_panic(expected = "equally many stages")]
    #[allow(deprecated)] // the panicking constructor keeps its contract until removal
    fn unbalanced_challenge_panics() {
        let _ = Challenge::new(
            ConfigVector::from_selected(4, &[0, 1]),
            ConfigVector::from_selected(4, &[2]),
        );
    }

    #[test]
    fn try_new_rejects_malformed_challenges() {
        let err = Challenge::try_new(
            ConfigVector::from_selected(4, &[0, 1]),
            ConfigVector::from_selected(5, &[0, 1]),
        )
        .unwrap_err();
        assert!(err.to_string().contains("equally long"), "{err}");
        let err = Challenge::try_new(
            ConfigVector::from_selected(4, &[0, 1]),
            ConfigVector::from_selected(4, &[2]),
        )
        .unwrap_err();
        assert!(err.to_string().contains("equally many stages"), "{err}");
        assert!(Challenge::try_new(
            ConfigVector::from_selected(4, &[0, 1]),
            ConfigVector::from_selected(4, &[2, 3]),
        )
        .is_ok());
    }
}
