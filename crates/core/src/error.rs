//! The crate-wide error type.
//!
//! Every fallible entry point in `ropuf-core` returns [`Error`], so
//! callers (the `ropuf` CLI, the bench harness, downstream services)
//! match on one enum instead of threading `Box<dyn Error>` around.

use std::fmt;

use crate::persist::ParseEnrollmentError;

/// Unified error for calibration, selection, enrollment, fleet
/// evaluation, and persistence parsing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A calibration input was unusable (empty ring, non-finite
    /// measurement, inconsistent stage counts).
    Calibration(String),
    /// A selection request was malformed (mismatched delay vectors, no
    /// admissible configuration under the parity policy).
    Selection(String),
    /// Enrollment could not be performed (empty floorplan, units
    /// outside the board, invalid options).
    Enrollment(String),
    /// A fleet run was misconfigured (zero boards, floorplan that does
    /// not fit the board, even vote count).
    Fleet(String),
    /// A challenge was malformed (mismatched configuration lengths or
    /// unbalanced selected-stage counts).
    Challenge(String),
    /// Stored enrollment text did not parse.
    Parse(ParseEnrollmentError),
    /// A lifecycle operation was invalid (no usable bits, malformed key
    /// material, helper data inconsistent with the enrollment).
    Lifecycle(String),
    /// A versioned byte stream was written by an incompatible format
    /// revision.
    UnsupportedVersion {
        /// What the stream claims to be.
        found: u16,
        /// The newest version this build reads.
        supported: u16,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Calibration(msg) => write!(f, "calibration: {msg}"),
            Self::Selection(msg) => write!(f, "selection: {msg}"),
            Self::Enrollment(msg) => write!(f, "enrollment: {msg}"),
            Self::Fleet(msg) => write!(f, "fleet: {msg}"),
            Self::Challenge(msg) => write!(f, "challenge: {msg}"),
            Self::Parse(e) => write!(f, "enrollment parse: {e}"),
            Self::Lifecycle(msg) => write!(f, "lifecycle: {msg}"),
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads up to {supported})"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseEnrollmentError> for Error {
    fn from(e: ParseEnrollmentError) -> Self {
        Self::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::enrollment_from_text;

    #[test]
    fn display_prefixes_the_domain() {
        assert!(Error::Fleet("zero boards".into())
            .to_string()
            .starts_with("fleet:"));
        assert!(Error::Enrollment("x".into())
            .to_string()
            .starts_with("enrollment:"));
    }

    #[test]
    fn parse_errors_convert_and_chain() {
        let parse_err = enrollment_from_text("not an enrollment").unwrap_err();
        let err: Error = parse_err.clone().into();
        assert_eq!(err, Error::Parse(parse_err));
        assert!(std::error::Error::source(&err).is_some());
    }
}
