//! Configurable ring oscillators over simulated silicon.
//!
//! A [`ConfigurableRo`] is a view of a contiguous-or-not group of delay
//! units on a [`Board`], in ring order. Applying a
//! [`ConfigVector`] yields the ring's round-trip delay; a
//! [`FrequencyCounter`] can read its oscillation frequency when the
//! configuration selects an odd number of inverters.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use ropuf_core::ro::{ConfigurableRo, RoPair};
//! use ropuf_core::ConfigVector;
//! use ropuf_silicon::{Environment, SiliconSim};
//! use ropuf_silicon::board::BoardId;
//!
//! let sim = SiliconSim::default_spartan();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let board = sim.grow_board_with_id(&mut rng, BoardId(0), 10, 5);
//! let pair = RoPair::split_range(&board, 0..10);
//! let config = ConfigVector::all_selected(5);
//! let env = Environment::nominal();
//! let d_top = pair.top().ring_delay_ps(&config, env, sim.technology());
//! assert!(d_top > 0.0);
//! ```

use std::ops::Range;

use rand::Rng;
use ropuf_silicon::{
    Board, DelayUnit, Environment, FrequencyCounter, MeasureArena, StageDelays, Technology,
};

use crate::config::ConfigVector;
use crate::error::Error;

/// A configurable ring oscillator: an ordered group of delay units on one
/// board.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigurableRo<'a> {
    board: &'a Board,
    stages: Vec<usize>,
}

impl<'a> ConfigurableRo<'a> {
    /// Builds a ring from explicit unit indices (ring order).
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty, contains duplicates, or references a
    /// unit outside the board. Use [`Self::try_new`] to get an error
    /// instead.
    #[deprecated(
        note = "use `ConfigurableRo::try_new` — crate boundaries reject bad layouts as errors"
    )]
    pub fn new(board: &'a Board, stages: Vec<usize>) -> Self {
        Self::try_new(board, stages).expect("invalid ring layout")
    }

    /// Fallible form of [`Self::new`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Selection`] if `stages` is empty, contains
    /// duplicates, or references a unit outside the board.
    pub fn try_new(board: &'a Board, stages: Vec<usize>) -> Result<Self, Error> {
        if stages.is_empty() {
            return Err(Error::Selection("a ring needs at least one stage".into()));
        }
        let mut seen = vec![false; board.len()];
        for &i in &stages {
            if i >= board.len() {
                return Err(Error::Selection(format!(
                    "unit index {i} out of range {}",
                    board.len()
                )));
            }
            if seen[i] {
                return Err(Error::Selection(format!(
                    "unit index {i} appears twice in the ring"
                )));
            }
            seen[i] = true;
        }
        Ok(Self { board, stages })
    }

    /// Builds a ring from a contiguous unit range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn from_range(board: &'a Board, range: Range<usize>) -> Self {
        Self::try_new(board, range.collect()).expect("invalid ring layout")
    }

    /// The board this ring lives on.
    pub fn board(&self) -> &'a Board {
        self.board
    }

    /// Number of stages (delay units) in the ring.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Always false: rings are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The board-unit indices of the stages, in ring order.
    pub fn stage_indices(&self) -> &[usize] {
        &self.stages
    }

    /// The delay unit backing stage `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn stage(&self, i: usize) -> &DelayUnit {
        let idx = self.stages[i];
        self.board
            .unit(idx)
            .expect("stage indices validated at construction")
    }

    /// True (noise-free) round-trip delay of the ring under `config`, in
    /// picoseconds. Every stage contributes: selected stages add
    /// `d + d1`, bypassed stages add `d0`.
    ///
    /// The common-mode [`Technology::delay_scale`] factor is hoisted out
    /// of the stage loop (it is a pure function of `(env, tech)`), so the
    /// walk costs one environment scaling instead of one per stage; the
    /// per-stage arithmetic is unchanged and the result bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `config.len() != self.len()`.
    pub fn ring_delay_ps(&self, config: &ConfigVector, env: Environment, tech: &Technology) -> f64 {
        self.ring_delay_ps_scaled(config, tech.delay_scale(env), env, tech)
    }

    /// [`Self::ring_delay_ps`] with the common-mode scale supplied by a
    /// caller measuring many rings at one operating point (one
    /// [`Technology::delay_scale`] per sweep instead of per ring).
    /// Bit-identical to `ring_delay_ps` for `scale == tech.delay_scale(env)`.
    pub(crate) fn ring_delay_ps_scaled(
        &self,
        config: &ConfigVector,
        scale: f64,
        env: Environment,
        tech: &Technology,
    ) -> f64 {
        assert_eq!(
            config.len(),
            self.len(),
            "configuration has {} stages but the ring has {}",
            config.len(),
            self.len()
        );
        (0..self.len())
            .map(|i| {
                self.stage(i)
                    .path_delay_scaled(config.is_selected(i), scale, env, tech)
            })
            .sum()
    }

    /// Total bypass delay (the all-zero configuration): the
    /// configuration-independent floor `B = Σ d0_i`.
    pub fn bypass_delay_ps(&self, env: Environment, tech: &Technology) -> f64 {
        let scale = tech.delay_scale(env);
        (0..self.len())
            .map(|i| self.stage(i).path_delay_scaled(false, scale, env, tech))
            .sum()
    }

    /// Caches every stage's selected/bypass path-delay contribution at
    /// `env` — the per-ring input of the batched §III.B calibration
    /// kernel ([`ropuf_silicon::measure::BatchProbe`]). Each cached value
    /// is exactly the `path_delay` the corresponding whole-ring walk
    /// would evaluate, so delays derived from the cache are bit-identical
    /// to [`Self::ring_delay_ps`].
    pub fn stage_delays(&self, env: Environment, tech: &Technology) -> StageDelays {
        let scale = tech.delay_scale(env);
        StageDelays::new(
            (0..self.len())
                .map(|i| self.stage(i).path_delay_scaled(true, scale, env, tech))
                .collect(),
            (0..self.len())
                .map(|i| self.stage(i).path_delay_scaled(false, scale, env, tech))
                .collect(),
        )
    }

    /// Fills ring `ring_index` of a [`MeasureArena`] block with this
    /// ring's per-stage selected/bypass contributions at `env` — the
    /// allocation-free counterpart of [`Self::stage_delays`]. Each slot
    /// receives exactly the value `stage_delays` would cache
    /// (same `path_delay_scaled` call, same hoisted scale), so sweeps
    /// derived from the arena are bit-identical to the per-ring cache.
    ///
    /// # Panics
    ///
    /// Panics if the arena block has fewer stages than the ring or
    /// `ring_index` is outside the block.
    pub fn stage_delays_into(
        &self,
        env: Environment,
        tech: &Technology,
        arena: &mut MeasureArena,
        ring_index: usize,
    ) {
        let scale = tech.delay_scale(env);
        for i in 0..self.len() {
            let unit = self.stage(i);
            arena.set_stage(
                ring_index,
                i,
                unit.path_delay_scaled(true, scale, env, tech),
                unit.path_delay_scaled(false, scale, env, tech),
            );
        }
    }

    /// True per-stage `ddiff` values at `env` (an oracle for calibration
    /// tests; real flows recover these through
    /// [`crate::calibrate`]).
    pub fn true_ddiffs_ps(&self, env: Environment, tech: &Technology) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.stage(i).ddiff(env, tech))
            .collect()
    }

    /// Oscillation frequency (MHz) of the configured ring as read by
    /// `counter`.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::DoesNotOscillate`] if `config` selects an
    /// even number of inverters.
    ///
    /// # Panics
    ///
    /// Panics if `config.len() != self.len()`.
    pub fn frequency_mhz<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        counter: &FrequencyCounter,
        config: &ConfigVector,
        env: Environment,
        tech: &Technology,
    ) -> Result<f64, RingError> {
        if !config.oscillates() {
            return Err(RingError::DoesNotOscillate {
                selected: config.selected_count(),
            });
        }
        let delay = self.ring_delay_ps(config, env, tech);
        Ok(counter.measure_mhz(rng, delay))
    }
}

/// A top/bottom pair of configurable rings — the unit that produces one
/// PUF bit.
#[derive(Debug, Clone, PartialEq)]
pub struct RoPair<'a> {
    top: ConfigurableRo<'a>,
    bottom: ConfigurableRo<'a>,
}

impl<'a> RoPair<'a> {
    /// Pairs two rings.
    ///
    /// # Panics
    ///
    /// Panics if the rings have different stage counts (the paper's
    /// architecture deploys identically sized rings). Use
    /// [`Self::try_new`] to get an error instead.
    #[deprecated(note = "use `RoPair::try_new` — crate boundaries reject bad layouts as errors")]
    pub fn new(top: ConfigurableRo<'a>, bottom: ConfigurableRo<'a>) -> Self {
        Self::try_new(top, bottom).expect("paired rings must have equal stage counts")
    }

    /// Fallible form of [`Self::new`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Selection`] if the rings have different stage
    /// counts.
    pub fn try_new(top: ConfigurableRo<'a>, bottom: ConfigurableRo<'a>) -> Result<Self, Error> {
        if top.len() != bottom.len() {
            return Err(Error::Selection(format!(
                "paired rings must have equal stage counts, got {} and {}",
                top.len(),
                bottom.len()
            )));
        }
        Ok(Self { top, bottom })
    }

    /// Splits a contiguous range of `2n` units into a top ring (first
    /// half) and bottom ring (second half).
    ///
    /// # Panics
    ///
    /// Panics if the range length is odd, empty, or out of bounds.
    pub fn split_range(board: &'a Board, range: Range<usize>) -> Self {
        let len = range.end.saturating_sub(range.start);
        assert!(
            len > 0 && len.is_multiple_of(2),
            "range must contain an even, nonzero number of units"
        );
        let mid = range.start + len / 2;
        Self::try_new(
            ConfigurableRo::from_range(board, range.start..mid),
            ConfigurableRo::from_range(board, mid..range.end),
        )
        .expect("halved ranges are equal-length by construction")
    }

    /// The top ring.
    pub fn top(&self) -> &ConfigurableRo<'a> {
        &self.top
    }

    /// The bottom ring.
    pub fn bottom(&self) -> &ConfigurableRo<'a> {
        &self.bottom
    }

    /// Stages per ring.
    pub fn stages(&self) -> usize {
        self.top.len()
    }

    /// Signed configured delay difference `top − bottom` (ps), the
    /// quantity whose sign is the PUF bit.
    ///
    /// # Panics
    ///
    /// Panics if either configuration length mismatches its ring.
    pub fn delay_difference_ps(
        &self,
        top_config: &ConfigVector,
        bottom_config: &ConfigVector,
        env: Environment,
        tech: &Technology,
    ) -> f64 {
        self.top.ring_delay_ps(top_config, env, tech)
            - self.bottom.ring_delay_ps(bottom_config, env, tech)
    }
}

/// Errors from ring measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// The configuration selects an even number of inverters, so the ring
    /// is combinationally stable and produces no frequency.
    DoesNotOscillate {
        /// Number of inverters the offending configuration selects.
        selected: usize,
    },
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::DoesNotOscillate { selected } => write!(
                f,
                "ring with {selected} selected inverters does not oscillate (even count)"
            ),
        }
    }
}

impl std::error::Error for RingError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_silicon::board::BoardId;
    use ropuf_silicon::SiliconSim;

    fn board() -> (Board, Technology) {
        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(99);
        (
            sim.grow_board_with_id(&mut rng, BoardId(0), 20, 5),
            *sim.technology(),
        )
    }

    #[test]
    fn ring_delay_sums_stage_paths() {
        let (board, tech) = board();
        let ro = ConfigurableRo::from_range(&board, 0..5);
        let env = Environment::nominal();
        let config = ConfigVector::from_flags(&[true, false, true, false, true]);
        let expect: f64 = (0..5)
            .map(|i| {
                board
                    .unit(i)
                    .unwrap()
                    .path_delay(config.is_selected(i), env, &tech)
            })
            .sum();
        assert!((ro.ring_delay_ps(&config, env, &tech) - expect).abs() < 1e-12);
    }

    #[test]
    fn bypass_delay_is_all_zero_config() {
        let (board, tech) = board();
        let ro = ConfigurableRo::from_range(&board, 5..10);
        let env = Environment::nominal();
        let zero = ConfigVector::from_flags(&[false; 5]);
        assert!(
            (ro.bypass_delay_ps(env, &tech) - ro.ring_delay_ps(&zero, env, &tech)).abs() < 1e-12
        );
    }

    #[test]
    fn more_selected_stages_slow_the_ring() {
        let (board, tech) = board();
        let ro = ConfigurableRo::from_range(&board, 0..5);
        let env = Environment::nominal();
        let mut prev = 0.0;
        for k in 0..=5 {
            let flags: Vec<bool> = (0..5).map(|i| i < k).collect();
            let d = ro.ring_delay_ps(&ConfigVector::from_flags(&flags), env, &tech);
            assert!(d > prev, "k={k}");
            prev = d;
        }
    }

    #[test]
    fn frequency_requires_odd_selection() {
        let (board, tech) = board();
        let ro = ConfigurableRo::from_range(&board, 0..5);
        let mut rng = StdRng::seed_from_u64(0);
        let counter = FrequencyCounter::ideal();
        let even = ConfigVector::from_selected(5, &[0, 1]);
        let err = ro
            .frequency_mhz(&mut rng, &counter, &even, Environment::nominal(), &tech)
            .unwrap_err();
        assert_eq!(err, RingError::DoesNotOscillate { selected: 2 });
        assert!(err.to_string().contains("does not oscillate"));

        let odd = ConfigVector::from_selected(5, &[0, 1, 2]);
        let f = ro
            .frequency_mhz(&mut rng, &counter, &odd, Environment::nominal(), &tech)
            .unwrap();
        assert!(f > 0.0);
    }

    #[test]
    fn frequency_matches_delay() {
        let (board, tech) = board();
        let ro = ConfigurableRo::from_range(&board, 0..5);
        let mut rng = StdRng::seed_from_u64(0);
        let counter = FrequencyCounter::ideal();
        let config = ConfigVector::all_selected(5);
        let env = Environment::nominal();
        let f = ro
            .frequency_mhz(&mut rng, &counter, &config, env, &tech)
            .unwrap();
        let expect = 1e6 / (2.0 * ro.ring_delay_ps(&config, env, &tech));
        assert!((f - expect).abs() / expect < 1e-3, "{f} vs {expect}");
    }

    #[test]
    fn true_ddiffs_match_units() {
        let (board, tech) = board();
        let ro = ConfigurableRo::try_new(&board, vec![3, 1, 4]).unwrap();
        let env = Environment::nominal();
        let dd = ro.true_ddiffs_ps(env, &tech);
        assert_eq!(dd.len(), 3);
        assert!((dd[0] - board.unit(3).unwrap().ddiff(env, &tech)).abs() < 1e-12);
        assert!((dd[1] - board.unit(1).unwrap().ddiff(env, &tech)).abs() < 1e-12);
    }

    #[test]
    fn split_range_halves() {
        let (board, _) = board();
        let pair = RoPair::split_range(&board, 4..14);
        assert_eq!(pair.stages(), 5);
        assert_eq!(pair.top().stage_indices(), &[4, 5, 6, 7, 8]);
        assert_eq!(pair.bottom().stage_indices(), &[9, 10, 11, 12, 13]);
    }

    #[test]
    fn delay_difference_is_antisymmetric_in_configs() {
        let (board, tech) = board();
        let pair = RoPair::split_range(&board, 0..10);
        let env = Environment::nominal();
        let c = ConfigVector::from_selected(5, &[0, 2, 4]);
        let d1 = pair.delay_difference_ps(&c, &c, env, &tech);
        let swapped = RoPair::try_new(pair.bottom().clone(), pair.top().clone()).unwrap();
        let d2 = swapped.delay_difference_ps(&c, &c, env, &tech);
        assert!((d1 + d2).abs() < 1e-12);
    }

    #[test]
    fn stage_delays_cache_matches_ring_walk_bit_for_bit() {
        let (board, tech) = board();
        let ro = ConfigurableRo::try_new(&board, vec![2, 7, 0, 5, 9]).unwrap();
        for env in [Environment::nominal(), Environment::new(0.98, 65.0)] {
            let delays = ro.stage_delays(env, &tech);
            let all = ConfigVector::all_selected(5);
            let none = ConfigVector::from_flags(&[false; 5]);
            assert_eq!(
                delays.all_selected_ps().to_bits(),
                ro.ring_delay_ps(&all, env, &tech).to_bits()
            );
            assert_eq!(
                delays.all_bypassed_ps().to_bits(),
                ro.ring_delay_ps(&none, env, &tech).to_bits()
            );
            for skip in 0..5 {
                let flags: Vec<bool> = (0..5).map(|i| i != skip).collect();
                let config = ConfigVector::from_flags(&flags);
                assert_eq!(
                    delays.all_but_ps(skip).to_bits(),
                    ro.ring_delay_ps(&config, env, &tech).to_bits(),
                    "skip={skip}"
                );
            }
        }
    }

    #[test]
    fn try_new_reports_layout_errors() {
        let (board, _) = board();
        assert!(matches!(
            ConfigurableRo::try_new(&board, vec![]),
            Err(Error::Selection(_))
        ));
        let err = ConfigurableRo::try_new(&board, vec![0, 0]).unwrap_err();
        assert!(err.to_string().contains("appears twice"));
        let err = ConfigurableRo::try_new(&board, vec![999]).unwrap_err();
        assert!(err.to_string().contains("out of range"));
        let top = ConfigurableRo::from_range(&board, 0..3);
        let bottom = ConfigurableRo::from_range(&board, 3..7);
        let err = RoPair::try_new(top, bottom).unwrap_err();
        assert!(err.to_string().contains("equal stage counts"));
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    #[allow(deprecated)] // the panicking constructor keeps its contract until removal
    fn duplicate_stage_panics() {
        let (board, _) = board();
        let _ = ConfigurableRo::new(&board, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "even, nonzero")]
    fn odd_split_panics() {
        let (board, _) = board();
        let _ = RoPair::split_range(&board, 0..5);
    }

    #[test]
    #[should_panic(expected = "equal stage counts")]
    #[allow(deprecated)] // the panicking constructor keeps its contract until removal
    fn unequal_pair_panics() {
        let (board, _) = board();
        let top = ConfigurableRo::from_range(&board, 0..3);
        let bottom = ConfigurableRo::from_range(&board, 3..7);
        let _ = RoPair::new(top, bottom);
    }
}
