//! Configurable ring oscillators over simulated silicon.
//!
//! A [`ConfigurableRo`] is a view of a contiguous-or-not group of delay
//! units on a [`Board`], in ring order. Applying a
//! [`ConfigVector`] yields the ring's round-trip delay; a
//! [`FrequencyCounter`] can read its oscillation frequency when the
//! configuration selects an odd number of inverters.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use ropuf_core::ro::{ConfigurableRo, RoPair};
//! use ropuf_core::ConfigVector;
//! use ropuf_silicon::{Environment, SiliconSim};
//! use ropuf_silicon::board::BoardId;
//!
//! let sim = SiliconSim::default_spartan();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let board = sim.grow_board_with_id(&mut rng, BoardId(0), 10, 5);
//! let pair = RoPair::split_range(&board, 0..10);
//! let config = ConfigVector::all_selected(5);
//! let env = Environment::nominal();
//! let d_top = pair.top().ring_delay_ps(&config, env, sim.technology());
//! assert!(d_top > 0.0);
//! ```

use std::ops::Range;

use rand::Rng;
use ropuf_silicon::{Board, DelayUnit, Environment, FrequencyCounter, Technology};

use crate::config::ConfigVector;

/// A configurable ring oscillator: an ordered group of delay units on one
/// board.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigurableRo<'a> {
    board: &'a Board,
    stages: Vec<usize>,
}

impl<'a> ConfigurableRo<'a> {
    /// Builds a ring from explicit unit indices (ring order).
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty, contains duplicates, or references a
    /// unit outside the board.
    pub fn new(board: &'a Board, stages: Vec<usize>) -> Self {
        assert!(!stages.is_empty(), "a ring needs at least one stage");
        let mut seen = vec![false; board.len()];
        for &i in &stages {
            assert!(
                i < board.len(),
                "unit index {i} out of range {}",
                board.len()
            );
            assert!(!seen[i], "unit index {i} appears twice in the ring");
            seen[i] = true;
        }
        Self { board, stages }
    }

    /// Builds a ring from a contiguous unit range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn from_range(board: &'a Board, range: Range<usize>) -> Self {
        Self::new(board, range.collect())
    }

    /// The board this ring lives on.
    pub fn board(&self) -> &'a Board {
        self.board
    }

    /// Number of stages (delay units) in the ring.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Always false: rings are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The board-unit indices of the stages, in ring order.
    pub fn stage_indices(&self) -> &[usize] {
        &self.stages
    }

    /// The delay unit backing stage `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn stage(&self, i: usize) -> &DelayUnit {
        let idx = self.stages[i];
        self.board
            .unit(idx)
            .expect("stage indices validated at construction")
    }

    /// True (noise-free) round-trip delay of the ring under `config`, in
    /// picoseconds. Every stage contributes: selected stages add
    /// `d + d1`, bypassed stages add `d0`.
    ///
    /// # Panics
    ///
    /// Panics if `config.len() != self.len()`.
    pub fn ring_delay_ps(&self, config: &ConfigVector, env: Environment, tech: &Technology) -> f64 {
        assert_eq!(
            config.len(),
            self.len(),
            "configuration has {} stages but the ring has {}",
            config.len(),
            self.len()
        );
        (0..self.len())
            .map(|i| self.stage(i).path_delay(config.is_selected(i), env, tech))
            .sum()
    }

    /// Total bypass delay (the all-zero configuration): the
    /// configuration-independent floor `B = Σ d0_i`.
    pub fn bypass_delay_ps(&self, env: Environment, tech: &Technology) -> f64 {
        (0..self.len())
            .map(|i| self.stage(i).path_delay(false, env, tech))
            .sum()
    }

    /// True per-stage `ddiff` values at `env` (an oracle for calibration
    /// tests; real flows recover these through
    /// [`crate::calibrate`]).
    pub fn true_ddiffs_ps(&self, env: Environment, tech: &Technology) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.stage(i).ddiff(env, tech))
            .collect()
    }

    /// Oscillation frequency (MHz) of the configured ring as read by
    /// `counter`.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::DoesNotOscillate`] if `config` selects an
    /// even number of inverters.
    ///
    /// # Panics
    ///
    /// Panics if `config.len() != self.len()`.
    pub fn frequency_mhz<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        counter: &FrequencyCounter,
        config: &ConfigVector,
        env: Environment,
        tech: &Technology,
    ) -> Result<f64, RingError> {
        if !config.oscillates() {
            return Err(RingError::DoesNotOscillate {
                selected: config.selected_count(),
            });
        }
        let delay = self.ring_delay_ps(config, env, tech);
        Ok(counter.measure_mhz(rng, delay))
    }
}

/// A top/bottom pair of configurable rings — the unit that produces one
/// PUF bit.
#[derive(Debug, Clone, PartialEq)]
pub struct RoPair<'a> {
    top: ConfigurableRo<'a>,
    bottom: ConfigurableRo<'a>,
}

impl<'a> RoPair<'a> {
    /// Pairs two rings.
    ///
    /// # Panics
    ///
    /// Panics if the rings have different stage counts (the paper's
    /// architecture deploys identically sized rings).
    pub fn new(top: ConfigurableRo<'a>, bottom: ConfigurableRo<'a>) -> Self {
        assert_eq!(
            top.len(),
            bottom.len(),
            "paired rings must have equal stage counts"
        );
        Self { top, bottom }
    }

    /// Splits a contiguous range of `2n` units into a top ring (first
    /// half) and bottom ring (second half).
    ///
    /// # Panics
    ///
    /// Panics if the range length is odd, empty, or out of bounds.
    pub fn split_range(board: &'a Board, range: Range<usize>) -> Self {
        let len = range.end.saturating_sub(range.start);
        assert!(
            len > 0 && len.is_multiple_of(2),
            "range must contain an even, nonzero number of units"
        );
        let mid = range.start + len / 2;
        Self::new(
            ConfigurableRo::from_range(board, range.start..mid),
            ConfigurableRo::from_range(board, mid..range.end),
        )
    }

    /// The top ring.
    pub fn top(&self) -> &ConfigurableRo<'a> {
        &self.top
    }

    /// The bottom ring.
    pub fn bottom(&self) -> &ConfigurableRo<'a> {
        &self.bottom
    }

    /// Stages per ring.
    pub fn stages(&self) -> usize {
        self.top.len()
    }

    /// Signed configured delay difference `top − bottom` (ps), the
    /// quantity whose sign is the PUF bit.
    ///
    /// # Panics
    ///
    /// Panics if either configuration length mismatches its ring.
    pub fn delay_difference_ps(
        &self,
        top_config: &ConfigVector,
        bottom_config: &ConfigVector,
        env: Environment,
        tech: &Technology,
    ) -> f64 {
        self.top.ring_delay_ps(top_config, env, tech)
            - self.bottom.ring_delay_ps(bottom_config, env, tech)
    }
}

/// Errors from ring measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// The configuration selects an even number of inverters, so the ring
    /// is combinationally stable and produces no frequency.
    DoesNotOscillate {
        /// Number of inverters the offending configuration selects.
        selected: usize,
    },
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::DoesNotOscillate { selected } => write!(
                f,
                "ring with {selected} selected inverters does not oscillate (even count)"
            ),
        }
    }
}

impl std::error::Error for RingError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_silicon::board::BoardId;
    use ropuf_silicon::SiliconSim;

    fn board() -> (Board, Technology) {
        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(99);
        (
            sim.grow_board_with_id(&mut rng, BoardId(0), 20, 5),
            *sim.technology(),
        )
    }

    #[test]
    fn ring_delay_sums_stage_paths() {
        let (board, tech) = board();
        let ro = ConfigurableRo::from_range(&board, 0..5);
        let env = Environment::nominal();
        let config = ConfigVector::from_flags(&[true, false, true, false, true]);
        let expect: f64 = (0..5)
            .map(|i| {
                board
                    .unit(i)
                    .unwrap()
                    .path_delay(config.is_selected(i), env, &tech)
            })
            .sum();
        assert!((ro.ring_delay_ps(&config, env, &tech) - expect).abs() < 1e-12);
    }

    #[test]
    fn bypass_delay_is_all_zero_config() {
        let (board, tech) = board();
        let ro = ConfigurableRo::from_range(&board, 5..10);
        let env = Environment::nominal();
        let zero = ConfigVector::from_flags(&[false; 5]);
        assert!(
            (ro.bypass_delay_ps(env, &tech) - ro.ring_delay_ps(&zero, env, &tech)).abs() < 1e-12
        );
    }

    #[test]
    fn more_selected_stages_slow_the_ring() {
        let (board, tech) = board();
        let ro = ConfigurableRo::from_range(&board, 0..5);
        let env = Environment::nominal();
        let mut prev = 0.0;
        for k in 0..=5 {
            let flags: Vec<bool> = (0..5).map(|i| i < k).collect();
            let d = ro.ring_delay_ps(&ConfigVector::from_flags(&flags), env, &tech);
            assert!(d > prev, "k={k}");
            prev = d;
        }
    }

    #[test]
    fn frequency_requires_odd_selection() {
        let (board, tech) = board();
        let ro = ConfigurableRo::from_range(&board, 0..5);
        let mut rng = StdRng::seed_from_u64(0);
        let counter = FrequencyCounter::ideal();
        let even = ConfigVector::from_selected(5, &[0, 1]);
        let err = ro
            .frequency_mhz(&mut rng, &counter, &even, Environment::nominal(), &tech)
            .unwrap_err();
        assert_eq!(err, RingError::DoesNotOscillate { selected: 2 });
        assert!(err.to_string().contains("does not oscillate"));

        let odd = ConfigVector::from_selected(5, &[0, 1, 2]);
        let f = ro
            .frequency_mhz(&mut rng, &counter, &odd, Environment::nominal(), &tech)
            .unwrap();
        assert!(f > 0.0);
    }

    #[test]
    fn frequency_matches_delay() {
        let (board, tech) = board();
        let ro = ConfigurableRo::from_range(&board, 0..5);
        let mut rng = StdRng::seed_from_u64(0);
        let counter = FrequencyCounter::ideal();
        let config = ConfigVector::all_selected(5);
        let env = Environment::nominal();
        let f = ro
            .frequency_mhz(&mut rng, &counter, &config, env, &tech)
            .unwrap();
        let expect = 1e6 / (2.0 * ro.ring_delay_ps(&config, env, &tech));
        assert!((f - expect).abs() / expect < 1e-3, "{f} vs {expect}");
    }

    #[test]
    fn true_ddiffs_match_units() {
        let (board, tech) = board();
        let ro = ConfigurableRo::new(&board, vec![3, 1, 4]);
        let env = Environment::nominal();
        let dd = ro.true_ddiffs_ps(env, &tech);
        assert_eq!(dd.len(), 3);
        assert!((dd[0] - board.unit(3).unwrap().ddiff(env, &tech)).abs() < 1e-12);
        assert!((dd[1] - board.unit(1).unwrap().ddiff(env, &tech)).abs() < 1e-12);
    }

    #[test]
    fn split_range_halves() {
        let (board, _) = board();
        let pair = RoPair::split_range(&board, 4..14);
        assert_eq!(pair.stages(), 5);
        assert_eq!(pair.top().stage_indices(), &[4, 5, 6, 7, 8]);
        assert_eq!(pair.bottom().stage_indices(), &[9, 10, 11, 12, 13]);
    }

    #[test]
    fn delay_difference_is_antisymmetric_in_configs() {
        let (board, tech) = board();
        let pair = RoPair::split_range(&board, 0..10);
        let env = Environment::nominal();
        let c = ConfigVector::from_selected(5, &[0, 2, 4]);
        let d1 = pair.delay_difference_ps(&c, &c, env, &tech);
        let swapped = RoPair::new(pair.bottom().clone(), pair.top().clone());
        let d2 = swapped.delay_difference_ps(&c, &c, env, &tech);
        assert!((d1 + d2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_stage_panics() {
        let (board, _) = board();
        let _ = ConfigurableRo::new(&board, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "even, nonzero")]
    fn odd_split_panics() {
        let (board, _) = board();
        let _ = RoPair::split_range(&board, 0..5);
    }

    #[test]
    #[should_panic(expected = "equal stage counts")]
    fn unequal_pair_panics() {
        let (board, _) = board();
        let top = ConfigurableRo::from_range(&board, 0..3);
        let bottom = ConfigurableRo::from_range(&board, 3..7);
        let _ = RoPair::new(top, bottom);
    }
}
