//! Fleet health observatory: §IV's quality statistics as an
//! operational dashboard.
//!
//! The paper evaluates its PUF with a handful of figures — uniqueness,
//! reliability across environment corners, uniformity — computed once
//! over a finished experiment. A deployed fleet needs the same figures
//! *continuously*: sampled on live silicon, compared against the values
//! enrolled at provisioning time, and classified into ok / warn /
//! critical so an operator notices drift before keys stop
//! reconstructing.
//!
//! [`FleetObservatory`] packages that loop. One [`sample`] call:
//!
//! 1. runs the fleet across an environment sweep (an edge sweep or the
//!    full [`Environment::corner_grid`]) on fresh silicon,
//! 2. optionally repeats the run on *aged* silicon
//!    ([`FleetAging`] drives [`ropuf_silicon::aging::AgingModel`]) —
//!    enrollment stays at year zero, responses come from the drifted
//!    devices, exactly the deployment scenario,
//! 3. harvests the selection counters (`select.case1.*`,
//!    `enroll.degenerate`, …) through a scoped in-memory telemetry
//!    sink, leaving whatever sink the application installed untouched,
//! 4. feeds every gauge in the [`default_gauges`] catalogue to a
//!    [`HealthBoard`], which classifies each against absolute limits
//!    and (when a baseline is enrolled) drift limits with hysteresis.
//!
//! The resulting [`FleetHealth`] carries the classified
//! [`HealthReport`] (renderable as a human table, versioned JSON, or
//! Prometheus text exposition) alongside the raw runs, so callers can
//! drill past the verdict.
//!
//! Monitoring is an *observer*: the fleet bits produced under the
//! observatory are byte-identical to a plain [`FleetEngine`] run with
//! the same configuration (guarded by `tests/monitor.rs`).
//!
//! The observatory watches the *silicon* (quality statistics sampled
//! from fleet runs); the serving side has parallel rails built on
//! the same classification machinery — `ropuf_server::ops` feeds
//! rolling-window availability/latency SLO gauges through an identical
//! [`HealthBoard`], scraped over the admin HTTP listener. Both planes
//! share one threshold/hysteresis semantics, so an operator reads one
//! vocabulary (`docs/OBSERVABILITY.md`).
//!
//! # Examples
//!
//! ```
//! use ropuf_core::monitor::{FleetObservatory, MonitorConfig, SweepPlan};
//! use ropuf_core::fleet::FleetConfig;
//! use ropuf_silicon::SiliconSim;
//!
//! let mut obs = FleetObservatory::new(
//!     SiliconSim::default_spartan(),
//!     MonitorConfig {
//!         fleet: FleetConfig {
//!             boards: 6,
//!             units: 60,
//!             stages: 5,
//!             ..FleetConfig::default()
//!         },
//!         sweep: SweepPlan::Nominal,
//!         aging: None,
//!         threads: Some(1),
//!     },
//! )
//! .unwrap();
//! let health = obs.sample(7);
//! println!("{}", health.report.render());
//! ```
//!
//! [`sample`]: FleetObservatory::sample

use std::sync::Arc;

use ropuf_metrics::report::QualityReport;
use ropuf_num::bits::BitVec;
use ropuf_silicon::env::Environment;
use ropuf_silicon::SiliconSim;
use ropuf_telemetry::health::{
    Baseline, Direction, GaugeSpec, HealthBoard, HealthReport, Thresholds,
};
use ropuf_telemetry::{self as telemetry, MemorySink, Snapshot};

use crate::error::Error;
use crate::fleet::{worker_threads, FleetAging, FleetConfig, FleetEngine, FleetRun};

/// Which environment corners a monitoring sample visits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepPlan {
    /// Nominal conditions only (1.20 V, 25 °C) — fastest, no corner
    /// coverage.
    Nominal,
    /// Nominal plus the voltage sweep at nominal temperature.
    Voltage,
    /// Nominal plus the temperature sweep at nominal voltage.
    Temperature,
    /// The full V×T grid ([`Environment::corner_grid`]) — every §IV.D
    /// operating point including the four extreme corners, where
    /// voltage and temperature stress combine.
    #[default]
    Full,
}

impl SweepPlan {
    /// The corner list this plan visits, nominal first, duplicates
    /// removed. Gauges index corner 0 as "nominal".
    pub fn corners(self) -> Vec<Environment> {
        let nominal = Environment::nominal();
        let mut corners = vec![nominal];
        let mut extend = |batch: Vec<Environment>| {
            for env in batch {
                if !corners.contains(&env) {
                    corners.push(env);
                }
            }
        };
        match self {
            SweepPlan::Nominal => {}
            SweepPlan::Voltage => extend(Environment::voltage_sweep(nominal.temperature_c)),
            SweepPlan::Temperature => extend(Environment::temperature_sweep(nominal.voltage_v)),
            SweepPlan::Full => extend(Environment::corner_grid()),
        }
        corners
    }
}

/// Configuration of a [`FleetObservatory`].
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorConfig {
    /// The fleet under observation. Its `corners` are replaced by the
    /// [`sweep`](Self::sweep) plan and its `aging` by
    /// [`aging`](Self::aging); everything else is used as-is.
    pub fleet: FleetConfig,
    /// Environment corners each sample visits.
    pub sweep: SweepPlan,
    /// When set, every sample additionally runs the fleet on silicon
    /// aged by this model, populating the `aged_flip_rate_*` gauges.
    /// `None` (or `years == 0`) skips the aged pass entirely.
    pub aging: Option<FleetAging>,
    /// Worker threads per fleet run; `None` = [`worker_threads`].
    /// Thread count never changes the bits (see [`crate::fleet`]).
    pub threads: Option<usize>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            fleet: FleetConfig::default(),
            sweep: SweepPlan::default(),
            aging: Some(FleetAging {
                model: Default::default(),
                years: 5.0,
            }),
            threads: None,
        }
    }
}

/// The default gauge catalogue: every §IV statistic the observatory
/// samples, with its alarm thresholds.
///
/// Level thresholds are calibrated so a healthy fleet (the paper's
/// simulated Spartan-6 technology, Case-2 selection, default probe)
/// reads `ok` across the full environment sweep, while ≥5 years of
/// default-model aging trips `aged_flip_rate_worst`. Drift thresholds
/// are deliberately tighter than level thresholds: a fleet can be
/// inside absolute limits yet drifting fast enough to warrant a look.
pub fn default_gauges() -> Vec<GaugeSpec> {
    let level = |warn: f64, critical: f64, hysteresis: f64| Thresholds {
        warn,
        critical,
        hysteresis,
    };
    vec![
        GaugeSpec {
            name: "flip_rate_nominal",
            help: "Mean response flip fraction at the nominal corner (ideal 0)",
            direction: Direction::HighIsBad,
            level: level(0.01, 0.05, 0.002),
            drift: Some(level(0.005, 0.02, 0.001)),
        },
        GaugeSpec {
            name: "flip_rate_worst_corner",
            help: "Mean response flip fraction at the worst environment corner (ideal 0)",
            direction: Direction::HighIsBad,
            level: level(0.05, 0.15, 0.005),
            drift: Some(level(0.02, 0.08, 0.002)),
        },
        GaugeSpec {
            name: "flip_rate_worst_board",
            help: "Worst per-board flip fraction across all corners (ideal 0)",
            direction: Direction::HighIsBad,
            level: level(0.10, 0.25, 0.01),
            drift: None,
        },
        GaugeSpec {
            name: "uniqueness",
            help: "Mean normalized inter-chip Hamming distance (ideal 0.5)",
            direction: Direction::LowIsBad,
            level: level(0.40, 0.30, 0.01),
            drift: None,
        },
        GaugeSpec {
            name: "uniqueness_bias",
            help: "Distance of uniqueness from the 0.5 ideal",
            direction: Direction::HighIsBad,
            level: level(0.10, 0.20, 0.01),
            drift: Some(level(0.05, 0.10, 0.005)),
        },
        GaugeSpec {
            name: "uniformity_bias",
            help: "Distance of the mean ones-fraction from the 0.5 ideal",
            direction: Direction::HighIsBad,
            // Looser than uniqueness_bias: with short responses the
            // per-board ones-fraction is quantized at 1/bits, so small
            // fleets legitimately wobble well past 0.1.
            level: level(0.15, 0.25, 0.01),
            drift: Some(level(0.05, 0.10, 0.005)),
        },
        GaugeSpec {
            name: "worst_aliasing",
            help: "Largest per-position bit-aliasing deviation from 0.5 (0.5 = stuck position)",
            direction: Direction::HighIsBad,
            level: level(0.45, 0.4999, 0.005),
            drift: None,
        },
        GaugeSpec {
            name: "min_entropy_per_bit",
            help: "Mean positional min-entropy per response bit (ideal 1)",
            direction: Direction::LowIsBad,
            level: level(0.30, 0.10, 0.02),
            drift: None,
        },
        GaugeSpec {
            name: "degenerate_pair_rate",
            help: "Fraction of enrolled pairs with zero selection margin (bits with no silicon signature)",
            direction: Direction::HighIsBad,
            level: level(0.01, 0.05, 0.002),
            drift: None,
        },
        GaugeSpec {
            name: "case_win_bias",
            help: "Distance of the selection win share (case1 positive / case2 forward) from 0.5",
            direction: Direction::HighIsBad,
            level: level(0.25, 0.40, 0.02),
            drift: Some(level(0.10, 0.25, 0.01)),
        },
        GaugeSpec {
            name: "aged_flip_rate_nominal",
            help: "Mean flip fraction at the nominal corner on aged silicon (ideal 0)",
            direction: Direction::HighIsBad,
            level: level(0.005, 0.05, 0.001),
            drift: Some(level(0.005, 0.02, 0.001)),
        },
        GaugeSpec {
            name: "aged_flip_rate_worst",
            help: "Mean flip fraction at the worst corner on aged silicon (ideal 0)",
            direction: Direction::HighIsBad,
            level: level(0.01, 0.10, 0.002),
            drift: Some(level(0.01, 0.05, 0.002)),
        },
        // Fault-tolerance gauges: observed only when a fault-injection
        // plan is active (or a genuine quarantine struck), so plain
        // monitoring reports are unchanged.
        GaugeSpec {
            name: "quarantined_board_rate",
            help: "Fraction of boards quarantined instead of evaluated (ideal 0)",
            direction: Direction::HighIsBad,
            level: level(0.05, 0.25, 0.01),
            drift: None,
        },
        GaugeSpec {
            name: "unrecoverable_read_rate",
            help: "Fraction of measurement reads that failed even after retry/read-back recovery",
            direction: Direction::HighIsBad,
            level: level(0.002, 0.02, 0.0005),
            drift: None,
        },
        GaugeSpec {
            name: "injected_fault_rate",
            help: "Fraction of measurement reads hit by an injected fault (chaos-drill dial, ideal 0)",
            direction: Direction::HighIsBad,
            level: level(0.05, 0.25, 0.01),
            drift: None,
        },
        // Security gauges: attacker advantage (accuracy − 0.5) of the
        // `ropuf-attack` suite, observed only when a caller supplies the
        // suite's readings ([`FleetObservatory::sample_with_security`]) —
        // the core crate cannot run the attacks itself without a
        // dependency cycle. Plain samples leave them unobserved, so
        // existing reports are unchanged.
        GaugeSpec {
            name: "attacker_advantage_count_leak",
            help: "Count-leak advantage against the guarded Case-2 kernel (ideal 0; >0 means the equal-count guard broke)",
            direction: Direction::HighIsBad,
            level: level(0.02, 0.10, 0.005),
            drift: Some(level(0.01, 0.05, 0.002)),
        },
        GaugeSpec {
            name: "attacker_advantage_degenerate",
            help: "Degenerate-tie distinguisher advantage on the production fleet (ideal 0)",
            direction: Direction::HighIsBad,
            level: level(0.02, 0.10, 0.005),
            drift: None,
        },
        GaugeSpec {
            name: "attacker_advantage_gradient",
            help: "Spatial-gradient inference advantage against the distilled enrollment (ideal 0)",
            direction: Direction::HighIsBad,
            level: level(0.10, 0.20, 0.01),
            drift: None,
        },
        GaugeSpec {
            name: "attacker_advantage_broken_guard",
            help: "Count-leak advantage against the deliberately unguarded kernel — a canary that must stay HIGH (~0.5); a drop means the attack harness lost its teeth",
            direction: Direction::LowIsBad,
            level: level(0.40, 0.20, 0.02),
            drift: None,
        },
    ]
}

/// One monitoring sample: the classified health verdict plus the raw
/// material it was derived from.
#[derive(Debug, Clone)]
pub struct FleetHealth {
    /// Classified gauge readings (render as human table, JSON, or
    /// Prometheus exposition).
    pub report: HealthReport,
    /// The fresh-silicon run the quality gauges were computed from.
    pub fresh: FleetRun,
    /// The aged-silicon run, when aging was configured.
    pub aged: Option<FleetRun>,
    /// Selection/enrollment counters and span histograms harvested
    /// during the sample (scoped; the application's own telemetry
    /// registry is not disturbed).
    pub counters: Snapshot,
}

/// Samples fleet quality gauges and classifies them against thresholds
/// and an optional enrolled baseline. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct FleetObservatory {
    fresh: FleetEngine,
    aged: Option<FleetEngine>,
    threads: usize,
    health: HealthBoard,
}

impl FleetObservatory {
    /// Builds an observatory over `sim` per `config`.
    ///
    /// Fails like [`FleetEngine::new`] on an invalid fleet or aging
    /// configuration.
    pub fn new(sim: SiliconSim, config: MonitorConfig) -> Result<Self, Error> {
        let MonitorConfig {
            fleet,
            sweep,
            aging,
            threads,
        } = config;
        let fleet = FleetConfig {
            corners: sweep.corners(),
            aging: None,
            ..fleet
        };
        let aged = match aging {
            Some(a) if a.years > 0.0 => Some(FleetEngine::new(
                sim.clone(),
                FleetConfig {
                    aging: Some(a),
                    ..fleet.clone()
                },
            )?),
            _ => None,
        };
        let fresh = FleetEngine::new(sim, fleet)?;
        Ok(Self {
            fresh,
            aged,
            threads: threads.unwrap_or_else(worker_threads),
            health: HealthBoard::new(default_gauges()),
        })
    }

    /// The corners each sample visits (nominal first).
    pub fn corners(&self) -> &[Environment] {
        &self.fresh.config().corners
    }

    /// The fleet configuration of the fresh-silicon pass.
    pub fn config(&self) -> &FleetConfig {
        self.fresh.config()
    }

    /// Installs the baseline that drift gauges compare against.
    pub fn set_baseline(&mut self, baseline: Baseline) {
        self.health.set_baseline(baseline);
    }

    /// The installed baseline, if any.
    pub fn baseline(&self) -> Option<&Baseline> {
        self.health.baseline()
    }

    /// Runs the fleet once and snapshots the current gauge values as a
    /// baseline — the enrollment half of drift detection. Persist the
    /// result ([`Baseline::to_json`]) and feed it back through
    /// [`set_baseline`](Self::set_baseline) on later samples.
    ///
    /// The enrollment run itself is classified level-only (no baseline
    /// is installed while it executes) and its alarm memory is
    /// discarded, so a subsequent [`sample`](Self::sample) starts from
    /// a clean hysteresis state.
    pub fn enroll_baseline(&mut self, master_seed: u64) -> Baseline {
        self.enroll_baseline_with_security(master_seed, &[])
    }

    /// [`enroll_baseline`](Self::enroll_baseline) with security-gauge
    /// readings (see [`sample_with_security`](Self::sample_with_security))
    /// included, so drift detection covers attacker advantage too.
    pub fn enroll_baseline_with_security(
        &mut self,
        master_seed: u64,
        security: &[(&'static str, f64)],
    ) -> Baseline {
        let before = self.health.clone();
        let health = self.sample_with_security(master_seed, security);
        self.health = before;
        Baseline {
            values: health
                .report
                .gauges
                .iter()
                .map(|g| (g.name.to_string(), g.value))
                .collect(),
        }
    }

    /// Runs one monitoring cycle at `master_seed`: fresh sweep, aged
    /// sweep (when configured), gauge classification. Deterministic —
    /// same seed, same silicon, same [`FleetHealth`] (timings aside) at
    /// any thread count.
    pub fn sample(&mut self, master_seed: u64) -> FleetHealth {
        self.sample_with_security(master_seed, &[])
    }

    /// [`sample`](Self::sample) plus externally supplied security-gauge
    /// readings — typically `ropuf_attack::suite::SuiteReport::
    /// security_readings()`, which the CLI `monitor` command feeds here.
    /// Readings whose names are not in the gauge catalogue are ignored;
    /// an empty slice makes this identical to [`sample`](Self::sample).
    pub fn sample_with_security(
        &mut self,
        master_seed: u64,
        security: &[(&'static str, f64)],
    ) -> FleetHealth {
        let sink = Arc::new(MemorySink::default());
        let (fresh, aged) = {
            let (fresh_engine, aged_engine, threads) = (&self.fresh, &self.aged, self.threads);
            telemetry::scoped(sink.clone(), || {
                let fresh = fresh_engine.run_on(master_seed, threads);
                let aged = aged_engine.as_ref().map(|e| e.run_on(master_seed, threads));
                (fresh, aged)
            })
        };
        let counters = sink.snapshot().unwrap_or_default();
        self.observe_gauges(&fresh, aged.as_ref(), &counters);
        for &(name, value) in security {
            if self.health.specs().iter().any(|s| s.name == name) {
                self.health.observe(name, value);
            }
        }
        FleetHealth {
            report: self.health.report(),
            fresh,
            aged,
            counters,
        }
    }

    fn observe_gauges(&mut self, fresh: &FleetRun, aged: Option<&FleetRun>, counters: &Snapshot) {
        let rates = fresh.corner_flip_rates();
        if let Some(&nominal) = rates.first() {
            self.health.observe("flip_rate_nominal", nominal);
        }
        if let Some(worst) = rates.iter().copied().reduce(f64::max) {
            self.health.observe("flip_rate_worst_corner", worst);
        }
        if let Some(worst) = worst_board_flip_rate(fresh) {
            self.health.observe("flip_rate_worst_board", worst);
        }
        // Quality statistics need equal-length responses (threshold
        // exclusions can desync board bit counts) and at least two
        // boards; skip the gauges rather than feed garbage.
        if let Some(report) = quality_report(fresh) {
            for (name, value) in report.health_gauges() {
                // `health_gauges` may grow figures the catalogue does
                // not watch (e.g. reliability when re-measurements
                // exist); only closed-catalogue names are observed.
                if self.health.specs().iter().any(|s| s.name == name) {
                    self.health.observe(name, value);
                }
            }
        }
        let count = |name: &str| {
            counters
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |&(_, v)| v)
        };
        let pairs = count("enroll.pairs.case1") + count("enroll.pairs.case2");
        if pairs > 0 {
            let degenerate = count("enroll.degenerate");
            self.health
                .observe("degenerate_pair_rate", degenerate as f64 / pairs as f64);
        }
        // Win counters from whichever selection algorithm actually ran
        // (the aged pass re-enrolls identically, so the share is
        // unchanged by double counting).
        let case1 = (
            count("select.case1.positive_wins"),
            count("select.case1.negative_wins"),
        );
        let case2 = (
            count("select.case2.forward_wins"),
            count("select.case2.reverse_wins"),
        );
        let (a, b) = if case1.0 + case1.1 >= case2.0 + case2.1 {
            case1
        } else {
            case2
        };
        if a + b > 0 {
            let share = a as f64 / (a + b) as f64;
            self.health.observe("case_win_bias", (share - 0.5).abs());
        }
        if let Some(aged) = aged {
            let rates = aged.corner_flip_rates();
            if let Some(&nominal) = rates.first() {
                self.health.observe("aged_flip_rate_nominal", nominal);
            }
            if let Some(worst) = rates.iter().copied().reduce(f64::max) {
                self.health.observe("aged_flip_rate_worst", worst);
            }
        }
        // Fault-tolerance gauges: only meaningful when the fault layer
        // ran (a plan is configured) or a board was actually pulled —
        // an unfaulted sample leaves them unobserved so its report is
        // identical to the pre-fault-layer output.
        let fault_layer_active = self.fresh.config().faults.is_some();
        if fault_layer_active || !fresh.quarantined.is_empty() {
            let total_boards = fresh.records.len() + fresh.quarantined.len();
            if total_boards > 0 {
                self.health.observe(
                    "quarantined_board_rate",
                    fresh.quarantined.len() as f64 / total_boards as f64,
                );
            }
        }
        if fault_layer_active && fresh.faults.reads > 0 {
            let reads = fresh.faults.reads as f64;
            self.health.observe(
                "unrecoverable_read_rate",
                fresh.faults.failed_reads as f64 / reads,
            );
            self.health.observe(
                "injected_fault_rate",
                fresh.faults.injected_faults() as f64 / reads,
            );
        }
    }
}

/// Worst per-board flip fraction over all corners: for each board, the
/// flip count at its worst corner over its bit count; maximum across
/// boards. `None` when no board enrolled any bits.
fn worst_board_flip_rate(run: &FleetRun) -> Option<f64> {
    run.records
        .iter()
        .filter(|r| !r.expected_bits.is_empty())
        .filter_map(|r| {
            r.corner_flips
                .iter()
                .max()
                .map(|&flips| flips as f64 / r.expected_bits.len() as f64)
        })
        .reduce(f64::max)
}

/// [`QualityReport`] over the run's enrolled bits, when computable:
/// at least two boards, all responses the same non-zero length.
fn quality_report(run: &FleetRun) -> Option<QualityReport> {
    let bits: Vec<BitVec> = run
        .records
        .iter()
        .map(|r| r.expected_bits.clone())
        .collect();
    let len = bits.first().map(BitVec::len)?;
    if len == 0 || bits.iter().any(|b| b.len() != len) {
        return None;
    }
    QualityReport::evaluate(&bits, &[])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(sweep: SweepPlan, aging: Option<FleetAging>) -> MonitorConfig {
        MonitorConfig {
            fleet: FleetConfig {
                boards: 6,
                units: 60,
                cols: 6,
                stages: 5,
                ..FleetConfig::default()
            },
            sweep,
            aging,
            threads: Some(1),
        }
    }

    #[test]
    fn sweep_plans_start_at_nominal_and_dedup() {
        for plan in [
            SweepPlan::Nominal,
            SweepPlan::Voltage,
            SweepPlan::Temperature,
            SweepPlan::Full,
        ] {
            let corners = plan.corners();
            assert_eq!(corners[0], Environment::nominal(), "{plan:?}");
            for (i, a) in corners.iter().enumerate() {
                assert!(
                    !corners[i + 1..].contains(a),
                    "{plan:?} repeats corner {a:?}"
                );
            }
        }
        assert_eq!(SweepPlan::Nominal.corners().len(), 1);
        assert_eq!(SweepPlan::Voltage.corners().len(), 5);
        assert_eq!(SweepPlan::Temperature.corners().len(), 5);
        // Full is the complete 5×5 V/T grid, including the extreme
        // corners the edge sweeps never visit.
        assert_eq!(SweepPlan::Full.corners().len(), 25);
        for extreme in Environment::extreme_corners() {
            assert!(SweepPlan::Full.corners().contains(&extreme));
        }
    }

    #[test]
    fn sample_reads_every_catalogue_gauge_it_has_data_for() {
        let mut obs = FleetObservatory::new(
            SiliconSim::default_spartan(),
            small_config(
                SweepPlan::Voltage,
                Some(FleetAging {
                    model: Default::default(),
                    years: 5.0,
                }),
            ),
        )
        .unwrap();
        let health = obs.sample(11);
        let names: Vec<_> = health.report.gauges.iter().map(|g| g.name).collect();
        for expected in [
            "flip_rate_nominal",
            "flip_rate_worst_corner",
            "flip_rate_worst_board",
            "uniqueness",
            "uniqueness_bias",
            "uniformity_bias",
            "worst_aliasing",
            "min_entropy_per_bit",
            "degenerate_pair_rate",
            "case_win_bias",
            "aged_flip_rate_nominal",
            "aged_flip_rate_worst",
        ] {
            assert!(names.contains(&expected), "missing gauge {expected}");
        }
        assert!(health.aged.is_some());
        assert!(!health.counters.counters.is_empty());
    }

    #[test]
    fn aged_gauges_absent_without_aging() {
        let mut obs = FleetObservatory::new(
            SiliconSim::default_spartan(),
            small_config(SweepPlan::Nominal, None),
        )
        .unwrap();
        let health = obs.sample(11);
        assert!(health.aged.is_none());
        assert!(health
            .report
            .gauges
            .iter()
            .all(|g| !g.name.starts_with("aged_")));
    }

    #[test]
    fn enroll_baseline_enables_drift_readings() {
        let mut obs = FleetObservatory::new(
            SiliconSim::default_spartan(),
            small_config(SweepPlan::Nominal, None),
        )
        .unwrap();
        let baseline = obs.enroll_baseline(3);
        assert!(baseline.get("flip_rate_nominal").is_some());
        obs.set_baseline(baseline);
        let health = obs.sample(3);
        let nominal = health
            .report
            .gauges
            .iter()
            .find(|g| g.name == "flip_rate_nominal")
            .unwrap();
        // Same seed as enrollment: drift is exactly zero.
        assert_eq!(nominal.drift, Some(0.0));
        assert!(nominal.drift_status.is_some());
    }

    #[test]
    fn security_gauges_appear_only_when_readings_are_supplied() {
        let mk = || {
            FleetObservatory::new(
                SiliconSim::default_spartan(),
                small_config(SweepPlan::Nominal, None),
            )
            .unwrap()
        };
        // Plain sample: no security gauge in the report.
        let plain = mk().sample(7);
        assert!(plain
            .report
            .gauges
            .iter()
            .all(|g| !g.name.starts_with("attacker_advantage_")));
        // With readings: all four classified, the canary via LowIsBad.
        let readings = [
            ("attacker_advantage_count_leak", 0.0),
            ("attacker_advantage_degenerate", 0.0),
            ("attacker_advantage_gradient", 0.03),
            ("attacker_advantage_broken_guard", 0.49),
            ("attacker_advantage_not_in_catalogue", 1.0),
        ];
        let health = mk().sample_with_security(7, &readings);
        let gauge = |name: &str| {
            health
                .report
                .gauges
                .iter()
                .find(|g| g.name == name)
                .unwrap_or_else(|| panic!("missing gauge {name}"))
        };
        assert_eq!(gauge("attacker_advantage_count_leak").value, 0.0);
        assert_eq!(gauge("attacker_advantage_broken_guard").value, 0.49);
        assert!(health
            .report
            .gauges
            .iter()
            .all(|g| g.name != "attacker_advantage_not_in_catalogue"));
        // A guarded-kernel leak and a limp canary both alarm.
        let bad = [
            ("attacker_advantage_count_leak", 0.2),
            ("attacker_advantage_broken_guard", 0.05),
        ];
        let health = mk().sample_with_security(7, &bad);
        assert_eq!(
            gauge_status(&health, "attacker_advantage_count_leak"),
            ropuf_telemetry::Status::Critical
        );
        assert_eq!(
            gauge_status(&health, "attacker_advantage_broken_guard"),
            ropuf_telemetry::Status::Critical
        );
    }

    fn gauge_status(health: &FleetHealth, name: &str) -> ropuf_telemetry::Status {
        health
            .report
            .gauges
            .iter()
            .find(|g| g.name == name)
            .unwrap_or_else(|| panic!("missing gauge {name}"))
            .status
    }

    #[test]
    fn security_baseline_covers_the_attack_gauges() {
        let mut obs = FleetObservatory::new(
            SiliconSim::default_spartan(),
            small_config(SweepPlan::Nominal, None),
        )
        .unwrap();
        let readings = [("attacker_advantage_count_leak", 0.0)];
        let baseline = obs.enroll_baseline_with_security(3, &readings);
        assert_eq!(baseline.get("attacker_advantage_count_leak"), Some(0.0));
        obs.set_baseline(baseline);
        let health = obs.sample_with_security(3, &readings);
        let gauge = health
            .report
            .gauges
            .iter()
            .find(|g| g.name == "attacker_advantage_count_leak")
            .unwrap();
        assert_eq!(gauge.drift, Some(0.0));
    }

    #[test]
    fn sampling_is_deterministic() {
        let mk = || {
            FleetObservatory::new(
                SiliconSim::default_spartan(),
                small_config(SweepPlan::Voltage, None),
            )
            .unwrap()
        };
        let a = mk().sample(42);
        let b = mk().sample(42);
        assert_eq!(a.fresh.records, b.fresh.records);
        assert_eq!(a.report.gauges, b.report.gauges);
        assert_eq!(a.counters.counters, b.counters.counters);
    }
}
