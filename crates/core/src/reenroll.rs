//! Drift-triggered re-enrollment: the reliability loop's actuator.
//!
//! The paper enrolls a device once and relies on §III.D's maximized
//! margins to absorb environmental stress. Deployed silicon also
//! *ages* — BTI drift shifts stage delays for years after enrollment
//! ([`ropuf_silicon::aging`]) — and the fleet observatory's
//! `aged_flip_rate_*` gauges ([`crate::monitor`]) exist to catch a
//! fleet whose enrolled margins are eroding. This module closes that
//! loop: a drift-flagged device is **re-enrolled** — §III.B calibration
//! and §III.D selection run again on the aged silicon, under the
//! min-margin-across-corners objective — and the new configuration is
//! accepted only when it demonstrably improves on what the device
//! already has.
//!
//! The pipeline is deliberately conservative:
//!
//! 1. [`assess_drift`] evaluates the *old* enrollment on the current
//!    silicon noiselessly (pure delay model, no probe noise): expected
//!    bits are re-derived at the enrollment point and every policy
//!    corner, and the worst-corner margin is the minimum over pairs,
//!    with a pair that flips anywhere contributing zero.
//! 2. A device that shows no drift at its enrollment point is left
//!    alone ([`ReenrollRejected::NotDrifted`]) — re-enrollment costs a
//!    maintenance window and invalidates issued key codes, so it must
//!    never fire on healthy silicon.
//! 3. The fresh multi-corner enrollment is accepted only if its
//!    assessed worst-corner margin *strictly beats* the old
//!    enrollment's re-assessed margin on the same silicon and corners
//!    ([`ReenrollRejected::NoImprovement`] otherwise). Aged silicon is
//!    still the same silicon: if the old configuration remains the
//!    best available, keeping it is free while replacing it is not.
//!
//! Determinism: assessment draws no randomness at all, and the fresh
//! enrollment is the standard seeded multi-corner pipeline, so the
//! whole decision is a pure function of `(seed, board, policy)`.

use ropuf_silicon::{Board, CornerSet, Environment, Technology};
use ropuf_telemetry as telemetry;
use ropuf_telemetry::health::{HealthReport, Status};

use crate::puf::{ConfigurableRoPuf, EnrollOptions, Enrollment};
use crate::robust::{enroll_robust, FaultPlan};

/// When to re-enroll and which corners the replacement must hold
/// margin at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReenrollPolicy {
    /// Corners the drift assessment and the replacement enrollment
    /// evaluate (the enrollment environment is always included and
    /// deduplicated). The default is [`CornerSet::worst_case`]:
    /// nominal plus the four V/T extremes.
    pub corners: CornerSet,
    /// A device whose assessed margin at the *enrollment point* falls
    /// below this floor counts as drifted even before a bit flips —
    /// the early-warning half of the trigger. Zero (the default)
    /// triggers on enrollment-point flips only.
    pub min_margin_ps: f64,
}

impl Default for ReenrollPolicy {
    fn default() -> Self {
        Self {
            corners: CornerSet::worst_case(),
            min_margin_ps: 0.0,
        }
    }
}

/// What [`assess_drift`] saw: the old enrollment re-evaluated on the
/// current silicon, without measurement noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftAssessment {
    /// Enrolled pairs still producing bits.
    pub bits: usize,
    /// Pairs whose bit flips at the enrollment point itself — the
    /// unambiguous drift signal (nothing but silicon change can flip a
    /// noiseless read at the point the device enrolled at).
    pub enrollment_point_flips: usize,
    /// Pairs whose bit flips (or ties) at *any* assessed corner.
    pub corner_flips: usize,
    /// Minimum over pairs of the margin at the enrollment point;
    /// a flipped pair contributes zero.
    pub min_margin_ps: f64,
    /// Minimum over pairs of the per-pair worst-corner margin; a pair
    /// that flips or ties at any corner contributes zero. This is the
    /// figure re-enrollment must beat.
    pub worst_corner_margin_ps: f64,
}

impl DriftAssessment {
    /// The re-enrollment trigger: a flip at the enrollment point, or
    /// an enrollment-point margin below the policy floor. Corner flips
    /// alone do not trigger — a nominal-only enrollment legitimately
    /// flips at corners it never optimized for, aged or not.
    pub fn drifted(&self, policy: &ReenrollPolicy) -> bool {
        self.enrollment_point_flips > 0 || self.min_margin_ps < policy.min_margin_ps
    }
}

/// Typed reasons a re-enrollment left the old enrollment in place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReenrollRejected {
    /// The device shows no drift at its enrollment point: re-enrolling
    /// would spend a maintenance window for nothing.
    NotDrifted {
        /// The assessment that cleared the device.
        assessment: DriftAssessment,
    },
    /// The fresh enrollment produced no usable bits at all.
    NoBits,
    /// The fresh enrollment's assessed worst-corner margin does not
    /// strictly beat the old enrollment's on the same silicon.
    NoImprovement {
        /// Old enrollment's re-assessed worst-corner margin, ps.
        old_margin_ps: f64,
        /// Candidate enrollment's worst-corner margin, ps.
        new_margin_ps: f64,
    },
}

impl std::fmt::Display for ReenrollRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotDrifted { assessment } => write!(
                f,
                "not drifted (min margin {:.2} ps, {} enrollment-point flips)",
                assessment.min_margin_ps, assessment.enrollment_point_flips
            ),
            Self::NoBits => write!(f, "replacement enrollment produced no bits"),
            Self::NoImprovement {
                old_margin_ps,
                new_margin_ps,
            } => write!(
                f,
                "no improvement (old worst-corner margin {old_margin_ps:.2} ps, new {new_margin_ps:.2} ps)"
            ),
        }
    }
}

/// Outcome of a [`reenroll`] attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum ReenrollOutcome {
    /// The replacement enrollment was accepted; the caller must
    /// supersede the old record with `enrollment` (and re-issue any
    /// key codes derived from the old response).
    Accepted {
        /// The replacement enrollment.
        enrollment: Enrollment,
        /// Old enrollment's re-assessed worst-corner margin, ps.
        old_margin_ps: f64,
        /// Replacement's assessed worst-corner margin, ps.
        new_margin_ps: f64,
    },
    /// The old enrollment stays in force.
    Rejected(ReenrollRejected),
}

impl ReenrollOutcome {
    /// The accepted replacement, if any.
    pub fn accepted(&self) -> Option<&Enrollment> {
        match self {
            Self::Accepted { enrollment, .. } => Some(enrollment),
            Self::Rejected(_) => None,
        }
    }
}

/// Re-evaluates `enrollment` on the *current* silicon of `board`,
/// noiselessly, at every corner in `corners` (index 0 must be the
/// enrollment environment — callers use [`assessment_corners`]).
///
/// Because the evaluation uses the pure delay model, any difference
/// from the enrolled bits is silicon change (aging, damage), never
/// measurement noise — which is what makes
/// [`DriftAssessment::drifted`] a sound trigger.
///
/// # Panics
///
/// Panics if `corners` is empty or a spec references units outside
/// `board`.
pub fn assess_drift(
    enrollment: &Enrollment,
    board: &Board,
    tech: &Technology,
    corners: &[Environment],
) -> DriftAssessment {
    assert!(
        !corners.is_empty(),
        "drift assessment needs at least one corner"
    );
    let _span = telemetry::span("reenroll.assess");
    let bound = enrollment.bind(board);
    let mut assessment = DriftAssessment {
        bits: bound.pairs().len(),
        enrollment_point_flips: 0,
        corner_flips: 0,
        min_margin_ps: f64::INFINITY,
        worst_corner_margin_ps: f64::INFINITY,
    };
    for (p, pair) in bound.pairs() {
        let mut pair_worst = f64::INFINITY;
        let mut pair_flipped = false;
        for (c, &env) in corners.iter().enumerate() {
            let scale = tech.delay_scale(env);
            let d = pair
                .top()
                .ring_delay_ps_scaled(p.top_config(), scale, env, tech)
                - pair
                    .bottom()
                    .ring_delay_ps_scaled(p.bottom_config(), scale, env, tech);
            let holds = d != 0.0 && (d > 0.0) == p.expected_bit();
            let margin = if holds { d.abs() } else { 0.0 };
            if !holds {
                pair_flipped = true;
                if c == 0 {
                    assessment.enrollment_point_flips += 1;
                }
            }
            if c == 0 {
                assessment.min_margin_ps = assessment.min_margin_ps.min(margin);
            }
            pair_worst = pair_worst.min(margin);
        }
        if pair_flipped {
            assessment.corner_flips += 1;
        }
        assessment.worst_corner_margin_ps = assessment.worst_corner_margin_ps.min(pair_worst);
    }
    if assessment.bits == 0 {
        assessment.min_margin_ps = 0.0;
        assessment.worst_corner_margin_ps = 0.0;
    }
    assessment
}

/// The corner list a re-enrollment decision evaluates: the enrollment
/// environment first, then the policy corners with `env` deduplicated.
pub fn assessment_corners(env: Environment, policy: &ReenrollPolicy) -> Vec<Environment> {
    let mut corners = vec![env];
    corners.extend(policy.corners.iter().filter(|&c| c != env));
    corners
}

/// Whether a fleet health report flags drift worth re-enrolling for:
/// any aged-silicon gauge at warn-or-worse, or any gauge whose drift
/// watch (value vs enrolled baseline) is at warn-or-worse. This is the
/// observatory half of the loop — it nominates the *fleet*; per-device
/// confirmation is [`assess_drift`]'s job.
pub fn drift_flagged(report: &HealthReport) -> bool {
    report.gauges.iter().any(|g| {
        (g.name.starts_with("aged_") && g.status >= Status::Warn)
            || g.drift_status.is_some_and(|s| s >= Status::Warn)
    })
}

/// Attempts to re-enroll a drift-flagged device. See the [module
/// docs](self) for the acceptance rules; `seed` drives the replacement
/// enrollment exactly like [`enroll_robust`], and the decision is
/// deterministic in `(seed, board, policy)`.
///
/// The replacement runs with `opts` under the policy's corner set
/// (min-margin-across-corners selection), through the fault-tolerant
/// pipeline of `plan`, so unreadable aged pairs are excluded via
/// §III.C instead of poisoning the candidate.
#[allow(clippy::too_many_arguments)] // the full enrollment context plus the old record
pub fn reenroll(
    puf: &ConfigurableRoPuf,
    seed: u64,
    board: &Board,
    tech: &Technology,
    env: Environment,
    opts: &EnrollOptions,
    policy: &ReenrollPolicy,
    plan: &FaultPlan,
    old: &Enrollment,
) -> ReenrollOutcome {
    let _span = telemetry::span("reenroll");
    let corners = assessment_corners(env, policy);
    let assessment = assess_drift(old, board, tech, &corners);
    if !assessment.drifted(policy) {
        telemetry::counter("reenroll.rejected.not_drifted", 1);
        return ReenrollOutcome::Rejected(ReenrollRejected::NotDrifted { assessment });
    }
    let new_opts = EnrollOptions {
        corners: policy.corners,
        ..*opts
    };
    let robust = enroll_robust(puf, seed, board, tech, env, &new_opts, plan);
    if robust.enrollment.bit_count() == 0 {
        telemetry::counter("reenroll.rejected.no_bits", 1);
        return ReenrollOutcome::Rejected(ReenrollRejected::NoBits);
    }
    let candidate = assess_drift(&robust.enrollment, board, tech, &corners);
    let (old_margin_ps, new_margin_ps) = (
        assessment.worst_corner_margin_ps,
        candidate.worst_corner_margin_ps,
    );
    if new_margin_ps <= old_margin_ps {
        telemetry::counter("reenroll.rejected.no_improvement", 1);
        return ReenrollOutcome::Rejected(ReenrollRejected::NoImprovement {
            old_margin_ps,
            new_margin_ps,
        });
    }
    telemetry::counter("reenroll.accepted", 1);
    ReenrollOutcome::Accepted {
        enrollment: robust.enrollment,
        old_margin_ps,
        new_margin_ps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_silicon::aging::AgingModel;
    use ropuf_silicon::board::BoardId;
    use ropuf_silicon::SiliconSim;

    fn setup(units: usize, seed: u64) -> (Board, Technology) {
        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(seed);
        let board = sim.grow_board_with_id(&mut rng, BoardId(0), units, 16);
        (board, *sim.technology())
    }

    fn harsh_aged(board: &Board, years: f64, seed: u64) -> Board {
        let model = AgingModel {
            sigma_drift_rel: 0.02,
            sigma_path_rel: 0.01,
            ..AgingModel::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        model.age_board(&mut rng, board, years)
    }

    fn stable_opts() -> EnrollOptions {
        // A threshold keeps near-tie pairs out, so noiseless
        // re-assessment of the enrolled bits cannot flip on unaged
        // silicon.
        EnrollOptions {
            threshold_ps: 5.0,
            ..EnrollOptions::default()
        }
    }

    #[test]
    fn unaged_board_is_not_drifted_and_reenroll_is_a_no_op() {
        let (board, tech) = setup(120, 3);
        let puf = ConfigurableRoPuf::tiled_interleaved(120, 5);
        let env = Environment::nominal();
        let opts = stable_opts();
        let old = puf.enroll_seeded(41, &board, &tech, env, &opts);
        let outcome = reenroll(
            &puf,
            42,
            &board,
            &tech,
            env,
            &opts,
            &ReenrollPolicy::default(),
            &FaultPlan::scaled(0.0),
            &old,
        );
        match outcome {
            ReenrollOutcome::Rejected(ReenrollRejected::NotDrifted { assessment }) => {
                assert_eq!(assessment.enrollment_point_flips, 0);
                assert!(assessment.min_margin_ps > 0.0);
            }
            other => panic!("expected NotDrifted, got {other:?}"),
        }
    }

    #[test]
    fn assessment_is_noiseless_and_deterministic() {
        let (board, tech) = setup(120, 3);
        let puf = ConfigurableRoPuf::tiled_interleaved(120, 5);
        let env = Environment::nominal();
        let old = puf.enroll_seeded(41, &board, &tech, env, &stable_opts());
        let corners = assessment_corners(env, &ReenrollPolicy::default());
        let a = assess_drift(&old, &board, &tech, &corners);
        let b = assess_drift(&old, &board, &tech, &corners);
        assert_eq!(a, b);
        assert_eq!(a.bits, old.bit_count());
        assert!(a.worst_corner_margin_ps <= a.min_margin_ps);
    }

    #[test]
    fn harsh_aging_triggers_and_reenroll_improves_the_margin() {
        let (board, tech) = setup(240, 5);
        let puf = ConfigurableRoPuf::tiled_interleaved(240, 5);
        let env = Environment::nominal();
        let opts = stable_opts();
        let old = puf.enroll_seeded(41, &board, &tech, env, &opts);
        // Find an aging draw that actually flips an enrolled bit at the
        // enrollment point; the pessimistic model makes this common.
        let policy = ReenrollPolicy::default();
        let corners = assessment_corners(env, &policy);
        let aged = (0..64)
            .map(|s| harsh_aged(&board, 10.0, s))
            .find(|aged| assess_drift(&old, aged, &tech, &corners).enrollment_point_flips > 0)
            .expect("some aging draw flips a bit");
        let outcome = reenroll(
            &puf,
            43,
            &aged,
            &tech,
            env,
            &opts,
            &policy,
            &FaultPlan::scaled(0.0),
            &old,
        );
        match outcome {
            ReenrollOutcome::Accepted {
                enrollment,
                old_margin_ps,
                new_margin_ps,
            } => {
                assert!(new_margin_ps > old_margin_ps);
                assert!(enrollment.bit_count() > 0);
                // The accepted enrollment holds its bits on the aged
                // silicon at every policy corner.
                let check = assess_drift(&enrollment, &aged, &tech, &corners);
                assert_eq!(check.corner_flips, 0, "{check:?}");
            }
            other => panic!("expected acceptance on drifted silicon, got {other:?}"),
        }
    }

    #[test]
    fn margin_floor_flags_drift_before_a_flip() {
        let (board, tech) = setup(120, 3);
        let puf = ConfigurableRoPuf::tiled_interleaved(120, 5);
        let env = Environment::nominal();
        let old = puf.enroll_seeded(41, &board, &tech, env, &stable_opts());
        let policy = ReenrollPolicy {
            min_margin_ps: f64::INFINITY,
            ..ReenrollPolicy::default()
        };
        let corners = assessment_corners(env, &policy);
        let assessment = assess_drift(&old, &board, &tech, &corners);
        assert_eq!(assessment.enrollment_point_flips, 0);
        assert!(assessment.drifted(&policy), "floor trigger");
        assert!(!assessment.drifted(&ReenrollPolicy::default()));
    }

    #[test]
    fn rejections_render_their_reason() {
        let rejected = ReenrollRejected::NoImprovement {
            old_margin_ps: 3.0,
            new_margin_ps: 2.5,
        };
        let text = rejected.to_string();
        assert!(text.contains("3.00"), "{text}");
        assert!(text.contains("2.50"), "{text}");
        assert!(ReenrollRejected::NoBits.to_string().contains("no bits"));
    }

    #[test]
    fn assessment_corners_start_at_env_and_dedup() {
        let env = Environment::nominal();
        let corners = assessment_corners(env, &ReenrollPolicy::default());
        assert_eq!(corners[0], env);
        // worst_case contains nominal; it must not appear twice.
        assert_eq!(corners.len(), 5);
        for (i, c) in corners.iter().enumerate() {
            assert!(!corners[i + 1..].contains(c));
        }
    }
}
