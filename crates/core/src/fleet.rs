//! Parallel fleet enrollment/evaluation engine.
//!
//! The paper's headline claims are statistical: uniqueness and
//! reliability only mean something over *fleets* of boards. This module
//! grows boards, enrolls a [`ConfigurableRoPuf`] on each, and collects
//! responses across environment corners — in parallel across boards,
//! with **byte-identical results at any thread count**.
//!
//! # Determinism by seed splitting
//!
//! Every board derives its own RNG from a `(master_seed, board_index)`
//! split (see [`split_seed`]): the master seed is perturbed by the
//! index through an odd-multiplier and passed through the SplitMix64
//! finalizer, which is a bijection on `u64`. Distinct indices therefore
//! *cannot* collide for a fixed master seed, and no RNG state is shared
//! between boards — so the engine may evaluate boards in any order, on
//! any number of threads, and produce the same bits as the serial
//! reference loop ([`FleetEngine::run_serial`]).
//!
//! Thread count comes from the `RAYON_NUM_THREADS` environment
//! variable (kept for ecosystem compatibility) and defaults to the
//! machine's available parallelism.
//!
//! # Examples
//!
//! ```
//! use ropuf_core::fleet::{FleetConfig, FleetEngine};
//! use ropuf_silicon::SiliconSim;
//!
//! let engine = FleetEngine::new(
//!     SiliconSim::default_spartan(),
//!     FleetConfig {
//!         boards: 8,
//!         units: 80,
//!         stages: 5,
//!         ..FleetConfig::default()
//!     },
//! )
//! .unwrap();
//! let parallel = engine.run(7);
//! let serial = engine.run_serial(7);
//! assert_eq!(parallel.expected_bits(), serial.expected_bits());
//! ```

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ropuf_num::bits::BitVec;
use ropuf_silicon::aging::AgingModel;
use ropuf_silicon::board::BoardId;
use ropuf_silicon::{DelayProbe, Environment, MeasureArena, SiliconSim};
use ropuf_telemetry as telemetry;

use crate::error::Error;
use crate::puf::{ConfigurableRoPuf, EnrollOptions, Enrollment};
use crate::robust::{self, FaultPlan, FaultSummary};

/// Derives the seed for `index` under `master_seed`.
///
/// The index is folded in with an odd multiplier (a bijection mod
/// 2⁶⁴), then the sum runs through the SplitMix64 finalizer (also a
/// bijection), so **distinct indices always yield distinct seeds** for
/// a fixed master — adjacent boards can never share an RNG stream.
pub fn split_seed(master_seed: u64, index: u64) -> u64 {
    let mut z = master_seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Number of worker threads a fleet run will use: `RAYON_NUM_THREADS`
/// when set to a positive integer, otherwise the machine's available
/// parallelism.
///
/// A set-but-invalid value (`"0"`, `"8x"`, …) falls back to all cores
/// and emits a telemetry warning naming the rejected value (to the
/// installed sink, or stderr when telemetry is disabled) — it is never
/// silently ignored. A set-but-empty value counts as unset.
pub fn worker_threads() -> usize {
    let all_cores = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    match std::env::var("RAYON_NUM_THREADS") {
        Err(_) => all_cores(),
        Ok(raw) => parse_worker_threads(&raw).unwrap_or_else(|| {
            let fallback = all_cores();
            if !raw.trim().is_empty() {
                telemetry::counter("fleet.thread_config_rejected", 1);
                telemetry::warn(&format!(
                    "RAYON_NUM_THREADS={raw:?} is not a positive integer; \
                     falling back to all {fallback} cores"
                ));
            }
            fallback
        }),
    }
}

/// Parses a `RAYON_NUM_THREADS` value: `Some(n)` for a positive
/// integer (surrounding whitespace tolerated), `None` otherwise —
/// including `"0"`, signs, and trailing garbage like `"8x"`. An empty
/// (or all-whitespace) value also returns `None`; [`worker_threads`]
/// treats that case as unset rather than invalid.
pub fn parse_worker_threads(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// Applies `f` to `0..count` on `threads` workers and returns the
/// results in index order.
///
/// Work is claimed dynamically in chunked ranges (see
/// [`parallel_map_indexed_with`]), so uneven items balance across
/// workers; results are keyed by index, so the output is independent of
/// scheduling. With `threads == 1` the loop runs on the calling thread
/// with no thread spawned at all.
///
/// With telemetry enabled, every claimed item bumps the
/// `parallel.items` counter, each participating worker bumps
/// `parallel.workers` and records the number of items it won into the
/// `parallel.worker_items` histogram (the work-steal / thread-
/// utilization profile), and items claimed beyond an even per-worker
/// share count as `parallel.steals`. None of this touches the mapped
/// values: results are bit-identical with telemetry on or off.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn parallel_map_indexed<U, F>(count: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    parallel_map_indexed_with(count, threads, || (), move |(), i| f(i))
}

/// Items claimed per atomic-cursor bump: aim for ~4 claims per worker
/// so the spawn/claim overhead amortizes over a range of items, while
/// late joiners can still steal a meaningful share. Capped so huge
/// inputs keep rebalancing, floored at one so small inputs still spread.
fn claim_chunk(count: usize, threads: usize) -> usize {
    (count / (threads * 4)).clamp(1, 32)
}

/// [`parallel_map_indexed`] with per-worker scratch state: every worker
/// (and the `threads == 1` inline path) builds one `S` with `init` and
/// threads it through each of its `f(&mut state, index)` calls. This is
/// how fleet workers reuse one measurement arena across all the boards
/// they claim instead of allocating per board.
///
/// Work is claimed in chunked index ranges from a shared atomic cursor
/// — dynamic enough that a stalled worker sheds load, coarse enough
/// that claiming is not one atomic per item. Chunking only changes
/// *which worker* computes an index, never the result: `f` must be pure
/// in its index (state is scratch, not an accumulator), and results are
/// reassembled in index order.
///
/// Telemetry matches [`parallel_map_indexed`]: `parallel.items`,
/// `parallel.workers`, the `parallel.worker_items` histogram, and
/// `parallel.steals` (items won beyond an even share).
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn parallel_map_indexed_with<S, U, I, F>(count: usize, threads: usize, init: I, f: F) -> Vec<U>
where
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> U + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    // An even split would hand each worker ceil(count / threads) items;
    // anything above that was dynamically stolen from slower peers.
    let fair_share = count.div_ceil(threads);
    if threads == 1 {
        let mut state = init();
        let out = (0..count).map(|i| f(&mut state, i)).collect();
        telemetry::counter("parallel.items", count as u64);
        telemetry::counter("parallel.workers", 1);
        telemetry::record("parallel.worker_items", count as u64);
        return out;
    }
    let chunk = claim_chunk(count, threads);
    let cursor = AtomicUsize::new(0);
    let mut keyed: Vec<(usize, U)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= count {
                            break;
                        }
                        for i in start..(start + chunk).min(count) {
                            out.push((i, f(&mut state, i)));
                        }
                    }
                    telemetry::counter("parallel.items", out.len() as u64);
                    telemetry::counter("parallel.workers", 1);
                    telemetry::record("parallel.worker_items", out.len() as u64);
                    telemetry::counter(
                        "parallel.steals",
                        out.len().saturating_sub(fair_share) as u64,
                    );
                    out
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| match w.join() {
                Ok(results) => results,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    keyed.sort_unstable_by_key(|&(i, _)| i);
    keyed.into_iter().map(|(_, u)| u).collect()
}

/// How ring pairs are placed on each board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Consecutive blocks of units per ring ([`ConfigurableRoPuf::tiled`]).
    Tiled,
    /// Physically adjacent units alternate between the two rings
    /// ([`ConfigurableRoPuf::tiled_interleaved`]) — the layout that
    /// cancels the systematic process gradient. The fleet default.
    #[default]
    Interleaved,
}

/// Lifetime drift injected between enrollment and response: each board
/// is enrolled fresh, then responds on silicon aged by
/// [`AgingModel::age_board`] — the deployment scenario where helper
/// data was provisioned at year 0 and the device answers years later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetAging {
    /// The drift model.
    pub model: AgingModel,
    /// Device age at response time, years. `0.0` is exactly the fresh
    /// path (no RNG is drawn, so enrollment *and* response bits match a
    /// run with no aging configured).
    pub years: f64,
}

/// Configuration of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of boards to grow and enroll.
    pub boards: usize,
    /// Delay units per board.
    pub units: usize,
    /// Grid width the units are placed on.
    pub cols: usize,
    /// Stages per ring.
    pub stages: usize,
    /// Pair placement.
    pub layout: Layout,
    /// Enrollment options (selection mode, parity, threshold, probe).
    pub opts: EnrollOptions,
    /// Environment corners responses are collected at, in order.
    pub corners: Vec<Environment>,
    /// Probe used for response measurements.
    pub response_probe: DelayProbe,
    /// Majority votes per response read (odd; `1` = single read).
    pub votes: usize,
    /// Optional lifetime drift applied to the silicon between
    /// enrollment and response (`None` = respond on fresh silicon).
    /// Aging draws from its own seed stream, so enrollment bits are
    /// identical with and without it.
    pub aging: Option<FleetAging>,
    /// Optional measurement-fault injection campaign (`None` = the
    /// plain pipeline). A plan with all rates at zero produces output
    /// byte-identical to `None`; fault rolls and retry reads draw from
    /// their own seed streams, so a fixed seed yields the same fault
    /// schedule — and the same quarantine set — at any thread count.
    pub faults: Option<FaultPlan>,
    /// Worker threads [`FleetEngine::run`] uses. `None` resolves
    /// [`worker_threads`] **once, at engine construction** — the
    /// environment is read a single time per run, so `run`, `run_on`,
    /// and `run_serial` can never disagree about the thread count
    /// mid-run even if `RAYON_NUM_THREADS` changes under them.
    pub threads: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            boards: 64,
            units: 480,
            cols: 16,
            stages: 5,
            layout: Layout::Interleaved,
            opts: EnrollOptions::default(),
            corners: vec![Environment::nominal(), Environment::new(0.98, 25.0)],
            response_probe: DelayProbe::new(0.25, 1),
            votes: 1,
            aging: None,
            faults: None,
            threads: None,
        }
    }
}

/// Everything recorded about one evaluated board.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardRecord {
    /// Index of the board in the fleet (also its [`BoardId`]).
    pub board_index: usize,
    /// The seed this board's RNG streams derive from.
    pub board_seed: u64,
    /// Bits recorded at enrollment.
    pub expected_bits: BitVec,
    /// Per-pair selection margins, picoseconds (excluded pairs skipped).
    pub margins_ps: Vec<f64>,
    /// Hamming distance to `expected_bits` of the response at each
    /// configured corner, in corner order. Erased bits (see
    /// `corner_erasures`) are not counted as flips.
    pub corner_flips: Vec<usize>,
    /// Response bits erased at each corner because their read-out
    /// failed unrecoverably, in corner order. All zeros unless fault
    /// injection is active.
    pub corner_erasures: Vec<usize>,
}

/// Why a board was quarantined instead of contributing a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// Calibration failed the sanity check: more than the configured
    /// fraction of pairs was unreadable even after retries.
    CalibrationFailure {
        /// Pairs whose calibration reads failed unrecoverably.
        unreadable_pairs: usize,
        /// Pairs attempted.
        total_pairs: usize,
    },
    /// Enrollment completed but produced no usable bits at all.
    NoBits,
    /// The board's evaluation panicked; the engine contained the
    /// unwind instead of letting it poison the thread map.
    WorkerPanic {
        /// The panic payload, when it carried a message.
        message: String,
    },
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CalibrationFailure {
                unreadable_pairs,
                total_pairs,
            } => write!(
                f,
                "calibration failed sanity checks ({unreadable_pairs}/{total_pairs} pairs unreadable)"
            ),
            Self::NoBits => write!(f, "enrollment produced no usable bits"),
            Self::WorkerPanic { message } => write!(f, "worker panic contained: {message}"),
        }
    }
}

/// One quarantined board: identity plus the typed reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// Index of the board in the fleet.
    pub board_index: usize,
    /// The seed its RNG streams derived from.
    pub board_seed: u64,
    /// Why it was pulled from the run.
    pub reason: QuarantineReason,
}

/// Outcome of evaluating one board: a record, or a quarantine. Either
/// way the fault layer's counters ride along.
enum BoardOutcome {
    Healthy(BoardRecord, FaultSummary),
    Quarantined(Quarantine, FaultSummary),
}

/// Result of a fleet run.
///
/// Partial results are a success mode: boards that could not be
/// evaluated appear in `quarantined` with a typed reason instead of
/// panicking the run, and `faults` totals what the fault-tolerance
/// layer saw and did.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Per-board records, in board order (quarantined boards omitted).
    pub records: Vec<BoardRecord>,
    /// Boards pulled from the run, in board order, with typed reasons.
    /// Empty unless fault injection (or a genuine bug) struck.
    pub quarantined: Vec<Quarantine>,
    /// Aggregate fault/retry/quarantine accounting for the whole run.
    pub faults: FaultSummary,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Worker threads the run used (`1` for the serial reference).
    pub threads: usize,
}

impl FleetRun {
    /// Boards evaluated per second of wall-clock.
    pub fn boards_per_sec(&self) -> f64 {
        self.records.len() as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// The enrolled bit-string of every board, in board order.
    pub fn expected_bits(&self) -> Vec<&BitVec> {
        self.records.iter().map(|r| &r.expected_bits).collect()
    }

    /// Mean enrolled bits per board.
    pub fn mean_bit_count(&self) -> f64 {
        let total: usize = self.records.iter().map(|r| r.expected_bits.len()).sum();
        total as f64 / self.records.len().max(1) as f64
    }

    /// Mean normalized pairwise inter-chip Hamming distance — the
    /// fleet's uniqueness figure (ideal: 0.5). Boards whose bit-strings
    /// have different lengths (threshold or fault exclusions) are
    /// compared over their common prefix; pairs with no overlap at all
    /// are skipped and counted on the
    /// `fleet.uniqueness.skipped_pairs` telemetry counter. `None` when
    /// no comparable pair of boards exists.
    pub fn uniqueness(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut pairs = 0usize;
        let mut skipped = 0u64;
        for i in 0..self.records.len() {
            for j in i + 1..self.records.len() {
                let (a, b) = (
                    &self.records[i].expected_bits,
                    &self.records[j].expected_bits,
                );
                let n = a.len().min(b.len());
                if n == 0 {
                    skipped += 1;
                    continue;
                }
                let hd = (0..n).filter(|&k| a.get(k) != b.get(k)).count();
                sum += hd as f64 / n as f64;
                pairs += 1;
            }
        }
        if skipped > 0 {
            telemetry::counter("fleet.uniqueness.skipped_pairs", skipped);
        }
        (pairs > 0).then(|| sum / pairs as f64)
    }

    /// Mean flip fraction at each corner, in corner order (the fleet's
    /// reliability figure; ideal: 0.0). Robust to ragged records:
    /// boards missing a corner simply don't contribute to it, and
    /// erased bits are removed from the denominator rather than
    /// counted as stable.
    pub fn corner_flip_rates(&self) -> Vec<f64> {
        let corners = self
            .records
            .iter()
            .map(|r| r.corner_flips.len())
            .max()
            .unwrap_or(0);
        (0..corners)
            .map(|c| {
                let (flips, bits) = self
                    .records
                    .iter()
                    .fold((0usize, 0usize), |(f, b), r| match r.corner_flips.get(c) {
                        Some(&flipped) => {
                            let erased = r.corner_erasures.get(c).copied().unwrap_or(0);
                            (
                                f + flipped,
                                b + r.expected_bits.len().saturating_sub(erased),
                            )
                        }
                        None => (f, b),
                    });
                flips as f64 / bits.max(1) as f64
            })
            .collect()
    }
}

/// The engine: a silicon technology plus a fleet configuration.
#[derive(Debug, Clone)]
pub struct FleetEngine {
    sim: SiliconSim,
    puf: ConfigurableRoPuf,
    config: FleetConfig,
    /// Worker-thread count, resolved exactly once at construction from
    /// [`FleetConfig::threads`] (or the environment when `None`).
    threads: usize,
}

// Per-board RNG streams: each purpose draws from its own split of the
// board seed so adding corners or votes never perturbs enrollment bits.
const STREAM_GROW: u64 = 0;
const STREAM_ENROLL: u64 = 1;
const STREAM_CORNER_BASE: u64 = 2;
// Far above any realistic corner count so the aging stream can never
// collide with a corner stream.
const STREAM_AGING: u64 = u64::MAX;
// Board-level fault stream (injected worker panics); distinct from the
// aging stream and likewise collision-free with corner streams.
const STREAM_FAULTS: u64 = u64::MAX - 1;

/// Renders a caught panic payload for [`QuarantineReason::WorkerPanic`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl FleetEngine {
    /// Validates the configuration and builds the engine.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Fleet`] when the configuration cannot run:
    /// zero boards, a floorplan that does not fit the board, an even
    /// vote count, or no corners to respond at.
    pub fn new(sim: SiliconSim, config: FleetConfig) -> Result<Self, Error> {
        if config.boards == 0 {
            return Err(Error::Fleet("fleet needs at least one board".into()));
        }
        if config.cols == 0 {
            return Err(Error::Fleet("grid width must be nonzero".into()));
        }
        if config.votes.is_multiple_of(2) {
            return Err(Error::Fleet(format!(
                "majority voting needs an odd vote count, got {}",
                config.votes
            )));
        }
        if config.stages == 0 || config.units < 2 * config.stages {
            return Err(Error::Fleet(format!(
                "{} units cannot host a {}-stage ring pair",
                config.units, config.stages
            )));
        }
        if let Some(aging) = &config.aging {
            if let Err(msg) = aging.model.validate() {
                return Err(Error::Fleet(format!("invalid aging model: {msg}")));
            }
            if !(aging.years.is_finite() && aging.years >= 0.0) {
                return Err(Error::Fleet(format!(
                    "device age must be finite and non-negative, got {}",
                    aging.years
                )));
            }
        }
        if let Some(plan) = &config.faults {
            if let Err(msg) = plan.validate() {
                return Err(Error::Fleet(format!("invalid fault plan: {msg}")));
            }
        }
        if config.threads == Some(0) {
            return Err(Error::Fleet("thread count must be nonzero".into()));
        }
        let puf = match config.layout {
            Layout::Tiled => ConfigurableRoPuf::tiled(config.units, config.stages),
            Layout::Interleaved => {
                ConfigurableRoPuf::tiled_interleaved(config.units, config.stages)
            }
        };
        // Resolve the environment exactly once so every `run` of this
        // engine agrees on the thread count (satellite of the
        // parallel-regression fix: `worker_threads()` used to be
        // re-read per call site).
        let threads = config.threads.unwrap_or_else(worker_threads);
        Ok(Self {
            sim,
            puf,
            config,
            threads,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shared floorplan every board enrolls.
    pub fn puf(&self) -> &ConfigurableRoPuf {
        &self.puf
    }

    /// The worker-thread count every [`run`](Self::run) of this engine
    /// uses: [`FleetConfig::threads`] when set, otherwise
    /// [`worker_threads`] as read once at construction.
    pub fn resolved_threads(&self) -> usize {
        self.threads
    }

    /// Evaluates the fleet on [`Self::resolved_threads`] workers.
    ///
    /// Deterministic: produces exactly the bits of
    /// [`run_serial`](Self::run_serial) for the same `master_seed`,
    /// independent of thread count and scheduling.
    pub fn run(&self, master_seed: u64) -> FleetRun {
        self.run_on(master_seed, self.threads)
    }

    /// Serial reference loop: the same evaluation on the calling
    /// thread, reusing one measurement arena across all boards. Exists
    /// so tests (and the bench harness's speedup figures) can diff the
    /// parallel engine against a plain loop.
    pub fn run_serial(&self, master_seed: u64) -> FleetRun {
        let start = Instant::now();
        let mut arena = MeasureArena::new();
        let outcomes = (0..self.config.boards)
            .map(|i| self.eval_outcome(master_seed, i, &mut arena))
            .collect();
        Self::assemble(outcomes, 1, start.elapsed())
    }

    /// Evaluates the fleet on an explicit number of workers, each with
    /// its own reused measurement arena.
    pub fn run_on(&self, master_seed: u64, threads: usize) -> FleetRun {
        let start = Instant::now();
        let outcomes = parallel_map_indexed_with(
            self.config.boards,
            threads,
            MeasureArena::new,
            |arena, i| self.eval_outcome(master_seed, i, arena),
        );
        Self::assemble(
            outcomes,
            threads.clamp(1, self.config.boards.max(1)),
            start.elapsed(),
        )
    }

    /// Splits per-board outcomes into records and quarantines (both in
    /// board order — the input already is) and totals the fault
    /// accounting.
    fn assemble(outcomes: Vec<BoardOutcome>, threads: usize, elapsed: Duration) -> FleetRun {
        let mut records = Vec::new();
        let mut quarantined = Vec::new();
        let mut faults = FaultSummary::default();
        for outcome in outcomes {
            match outcome {
                BoardOutcome::Healthy(record, summary) => {
                    faults.merge(&summary);
                    records.push(record);
                }
                BoardOutcome::Quarantined(quarantine, summary) => {
                    faults.merge(&summary);
                    quarantined.push(quarantine);
                }
            }
        }
        FleetRun {
            records,
            quarantined,
            faults,
            elapsed,
            threads,
        }
    }

    /// Evaluates one board with panic containment: a worker panic —
    /// injected or genuine — becomes a [`QuarantineReason::WorkerPanic`]
    /// outcome instead of unwinding through the scoped thread map and
    /// aborting the whole run.
    fn eval_outcome(
        &self,
        master_seed: u64,
        index: usize,
        arena: &mut MeasureArena,
    ) -> BoardOutcome {
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &self.config.faults {
                Some(plan) => self.eval_board_robust(master_seed, index, plan, arena),
                None => BoardOutcome::Healthy(
                    self.eval_board(master_seed, index, arena),
                    FaultSummary::default(),
                ),
            }));
        let outcome = match result {
            Ok(outcome) => outcome,
            Err(payload) => {
                let summary = FaultSummary {
                    contained_panics: 1,
                    quarantined_boards: 1,
                    ..FaultSummary::default()
                };
                BoardOutcome::Quarantined(
                    Quarantine {
                        board_index: index,
                        board_seed: split_seed(master_seed, index as u64),
                        reason: QuarantineReason::WorkerPanic {
                            message: panic_message(payload.as_ref()),
                        },
                    },
                    summary,
                )
            }
        };
        match &outcome {
            BoardOutcome::Healthy(_, summary) => robust::emit_summary_counters(summary),
            BoardOutcome::Quarantined(quarantine, summary) => {
                robust::emit_summary_counters(summary);
                telemetry::warn(&format!(
                    "board {} quarantined: {}",
                    quarantine.board_index, quarantine.reason
                ));
            }
        }
        outcome
    }

    /// Grows, enrolls, and reads back one board. Pure in
    /// `(master_seed, index)` — the engine shares no mutable state.
    ///
    /// With telemetry enabled, each stage (grow / enroll / respond)
    /// runs under its own span, all nested in a `fleet.board` span.
    fn eval_board(&self, master_seed: u64, index: usize, arena: &mut MeasureArena) -> BoardRecord {
        let _board_span = telemetry::span("fleet.board");
        telemetry::counter("fleet.boards", 1);
        let config = &self.config;
        let board_seed = split_seed(master_seed, index as u64);
        let tech = self.sim.technology();
        let board = {
            let _span = telemetry::span("fleet.grow");
            let mut grow_rng = StdRng::seed_from_u64(split_seed(board_seed, STREAM_GROW));
            self.sim.grow_board_with_id(
                &mut grow_rng,
                BoardId(index as u32),
                config.units,
                config.cols,
            )
        };
        let enrolled_at = *config.corners.first().unwrap_or(&Environment::nominal());
        let enrollment: Enrollment = {
            let _span = telemetry::span("fleet.enroll");
            self.puf.enroll_seeded_in(
                split_seed(board_seed, STREAM_ENROLL),
                &board,
                tech,
                enrolled_at,
                &config.opts,
                arena,
            )
        };
        let expected = enrollment.expected_bits();
        // Deployment drift: responses read back from aged silicon while
        // the enrollment above stays the year-0 reference. The aging
        // RNG is its own seed stream, so configuring it cannot perturb
        // enrollment or corner streams.
        let board = match &config.aging {
            Some(aging) if aging.years > 0.0 => {
                let _span = telemetry::span("fleet.age");
                let mut age_rng = StdRng::seed_from_u64(split_seed(board_seed, STREAM_AGING));
                aging.model.age_board(&mut age_rng, &board, aging.years)
            }
            _ => board,
        };
        let respond_span = telemetry::span("fleet.respond");
        // One binding of the (possibly aged) board serves every corner:
        // binding draws no randomness, so the sweep stays byte-identical
        // to per-corner rebinding.
        let bound = enrollment.bind(&board);
        let corner_flips = config
            .corners
            .iter()
            .enumerate()
            .map(|(c, &env)| {
                let mut rng =
                    StdRng::seed_from_u64(split_seed(board_seed, STREAM_CORNER_BASE + c as u64));
                let response = if config.votes > 1 {
                    bound.respond_majority(
                        &mut rng,
                        tech,
                        env,
                        &config.response_probe,
                        config.votes,
                    )
                } else {
                    bound.respond(&mut rng, tech, env, &config.response_probe)
                };
                // Same value as `hamming_distance` when the lengths
                // match (they do: both come from this enrollment), but
                // never panics on a ragged record.
                let n = response.len().min(expected.len());
                (0..n)
                    .filter(|&k| response.get(k) != expected.get(k))
                    .count()
            })
            .collect();
        drop(respond_span);
        BoardRecord {
            board_index: index,
            board_seed,
            margins_ps: enrollment.margins_ps(),
            expected_bits: expected,
            corner_flips,
            corner_erasures: vec![0; config.corners.len()],
        }
    }

    /// Fault-injecting twin of [`Self::eval_board`]: same seed streams
    /// and measurement order, but every read passes through the
    /// [`crate::robust`] retry/read-back pipeline, and boards that fail
    /// sanity checks are quarantined with a typed reason instead of
    /// producing garbage or panicking.
    fn eval_board_robust(
        &self,
        master_seed: u64,
        index: usize,
        plan: &FaultPlan,
        arena: &mut MeasureArena,
    ) -> BoardOutcome {
        let _board_span = telemetry::span("fleet.board");
        telemetry::counter("fleet.boards", 1);
        let config = &self.config;
        let board_seed = split_seed(master_seed, index as u64);
        let tech = self.sim.technology();
        let quarantine = |reason: QuarantineReason, mut summary: FaultSummary| {
            summary.quarantined_boards += 1;
            BoardOutcome::Quarantined(
                Quarantine {
                    board_index: index,
                    board_seed,
                    reason,
                },
                summary,
            )
        };
        // Injected worker panic: rolled from its own board-level stream
        // before any real work, so the panic schedule — like every
        // fault schedule — is a pure function of the master seed.
        if plan.model.panic_rate > 0.0 {
            let mut panic_rng = StdRng::seed_from_u64(split_seed(board_seed, STREAM_FAULTS));
            if panic_rng.gen::<f64>() < plan.model.panic_rate {
                panic!("injected fault: worker panic on board {index}");
            }
        }
        let board = {
            let _span = telemetry::span("fleet.grow");
            let mut grow_rng = StdRng::seed_from_u64(split_seed(board_seed, STREAM_GROW));
            self.sim.grow_board_with_id(
                &mut grow_rng,
                BoardId(index as u32),
                config.units,
                config.cols,
            )
        };
        let enrolled_at = *config.corners.first().unwrap_or(&Environment::nominal());
        let enrolled = {
            let _span = telemetry::span("fleet.enroll");
            robust::enroll_robust_in(
                &self.puf,
                split_seed(board_seed, STREAM_ENROLL),
                &board,
                tech,
                enrolled_at,
                &config.opts,
                plan,
                arena,
            )
        };
        let mut summary = enrolled.summary;
        if enrolled.total_pairs > 0 {
            let failed_fraction = enrolled.unreadable_pairs as f64 / enrolled.total_pairs as f64;
            if failed_fraction > plan.options.max_failed_pair_fraction {
                return quarantine(
                    QuarantineReason::CalibrationFailure {
                        unreadable_pairs: enrolled.unreadable_pairs,
                        total_pairs: enrolled.total_pairs,
                    },
                    summary,
                );
            }
        }
        let enrollment = enrolled.enrollment;
        if enrollment.bit_count() == 0 {
            return quarantine(QuarantineReason::NoBits, summary);
        }
        let expected = enrollment.expected_bits();
        let board = match &config.aging {
            Some(aging) if aging.years > 0.0 => {
                let _span = telemetry::span("fleet.age");
                let mut age_rng = StdRng::seed_from_u64(split_seed(board_seed, STREAM_AGING));
                aging.model.age_board(&mut age_rng, &board, aging.years)
            }
            _ => board,
        };
        let respond_span = telemetry::span("fleet.respond");
        // As in `eval_board`: bind the (possibly aged) board once and
        // reuse the context across the corner sweep.
        let bound = enrollment.bind(&board);
        let mut corner_flips = Vec::with_capacity(config.corners.len());
        let mut corner_erasures = Vec::with_capacity(config.corners.len());
        for (c, &env) in config.corners.iter().enumerate() {
            let corner_seed = split_seed(board_seed, STREAM_CORNER_BASE + c as u64);
            let (bits, corner_summary) = robust::respond_robust_bound(
                &bound,
                corner_seed,
                tech,
                env,
                &config.response_probe,
                config.votes,
                plan,
            );
            summary.merge(&corner_summary);
            let flips = bits
                .iter()
                .enumerate()
                .filter(|&(k, bit)| matches!(bit, Some(b) if Some(*b) != expected.get(k)))
                .count();
            corner_flips.push(flips);
            corner_erasures.push(bits.iter().filter(|bit| bit.is_none()).count());
        }
        drop(respond_span);
        BoardOutcome::Healthy(
            BoardRecord {
                board_index: index,
                board_seed,
                margins_ps: enrollment.margins_ps(),
                expected_bits: expected,
                corner_flips,
                corner_erasures,
            },
            summary,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_engine() -> FleetEngine {
        FleetEngine::new(
            SiliconSim::default_spartan(),
            FleetConfig {
                boards: 10,
                units: 60,
                cols: 6,
                stages: 3,
                ..FleetConfig::default()
            },
        )
        .expect("valid config")
    }

    #[test]
    fn thread_config_accepts_positive_integers() {
        assert_eq!(parse_worker_threads("1"), Some(1));
        assert_eq!(parse_worker_threads("8"), Some(8));
        assert_eq!(parse_worker_threads(" 4 "), Some(4), "whitespace trimmed");
        assert_eq!(
            parse_worker_threads("+2"),
            Some(2),
            "integer parse allows +"
        );
        assert_eq!(parse_worker_threads("128"), Some(128));
    }

    #[test]
    fn thread_config_rejects_zero_and_garbage() {
        // The historical bug: these fell back to all cores with no
        // signal that the requested value had been discarded.
        assert_eq!(parse_worker_threads("0"), None);
        assert_eq!(parse_worker_threads("8x"), None);
        assert_eq!(parse_worker_threads("-2"), None);
        assert_eq!(parse_worker_threads("2.0"), None);
        assert_eq!(parse_worker_threads("eight"), None);
        assert_eq!(parse_worker_threads(""), None);
        assert_eq!(parse_worker_threads("  "), None);
    }

    #[test]
    fn split_seed_is_injective_over_a_window() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(split_seed(99, i)), "collision at index {i}");
        }
    }

    #[test]
    fn split_seed_depends_on_master() {
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let out = parallel_map_indexed(100, 7, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_with_one_thread_runs_inline() {
        let out = parallel_map_indexed(5, 1, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn configured_thread_count_governs_run() {
        // Regression: `run()` used to call `worker_threads()` on every
        // invocation, re-reading the environment each time. The count is
        // now resolved once at engine construction and pinned in the
        // config, so `run()` is immune to later environment changes and
        // a `FleetConfig { threads: Some(n) }` override wins outright.
        for threads in [1usize, 3, 8] {
            let engine = FleetEngine::new(
                SiliconSim::default_spartan(),
                FleetConfig {
                    boards: 8,
                    units: 60,
                    cols: 6,
                    stages: 3,
                    threads: Some(threads),
                    ..FleetConfig::default()
                },
            )
            .expect("valid config");
            assert_eq!(engine.resolved_threads(), threads);
            assert_eq!(engine.run(5).threads, threads);
        }
        // `None` resolves the environment exactly once, at construction;
        // the resolved count is stable across calls.
        let auto = small_engine();
        let resolved = auto.resolved_threads();
        assert!(resolved >= 1);
        assert_eq!(auto.resolved_threads(), resolved);
        assert_eq!(auto.run(5).threads, resolved);
    }

    #[test]
    fn zero_thread_config_is_rejected() {
        let err = FleetEngine::new(
            SiliconSim::default_spartan(),
            FleetConfig {
                boards: 4,
                units: 60,
                cols: 6,
                stages: 3,
                threads: Some(0),
                ..FleetConfig::default()
            },
        )
        .expect_err("zero threads must not construct");
        assert!(err.to_string().contains("thread count"), "{err}");
    }

    #[test]
    fn parallel_and_serial_runs_are_bit_identical() {
        let engine = small_engine();
        let serial = engine.run_serial(7);
        for threads in [1, 2, 4, 8] {
            let parallel = engine.run_on(7, threads);
            assert_eq!(parallel.records, serial.records, "threads = {threads}");
        }
    }

    #[test]
    fn different_master_seeds_differ() {
        let engine = small_engine();
        let a = engine.run_on(1, 2);
        let b = engine.run_on(2, 2);
        assert_ne!(a.expected_bits(), b.expected_bits());
    }

    #[test]
    fn boards_have_expected_bit_budget() {
        let engine = small_engine();
        let run = engine.run_on(3, 2);
        assert_eq!(run.records.len(), 10);
        for r in &run.records {
            assert_eq!(r.expected_bits.len(), 10); // 60 units / (2 * 3 stages)
            assert_eq!(r.corner_flips.len(), 2);
        }
        assert!(run.uniqueness().expect("comparable boards") > 0.2);
        assert_eq!(run.corner_flip_rates().len(), 2);
    }

    #[test]
    fn nominal_corner_is_stable() {
        // First corner is the enrollment point; with the default probe
        // and paper-style margins, flips there should be rare.
        let engine = small_engine();
        let run = engine.run_on(11, 2);
        let rates = run.corner_flip_rates();
        assert!(rates[0] < 0.05, "nominal flip rate {}", rates[0]);
    }

    #[test]
    fn aging_leaves_enrollment_bits_untouched() {
        let sim = SiliconSim::default_spartan;
        let config = FleetConfig {
            boards: 8,
            units: 60,
            cols: 6,
            stages: 3,
            ..FleetConfig::default()
        };
        let fresh = FleetEngine::new(sim(), config.clone())
            .unwrap()
            .run_on(5, 2);
        let aged = FleetEngine::new(
            sim(),
            FleetConfig {
                aging: Some(FleetAging {
                    model: AgingModel::default(),
                    years: 10.0,
                }),
                ..config
            },
        )
        .unwrap()
        .run_on(5, 2);
        // Enrollment (and its margins) happen at year 0 either way.
        assert_eq!(aged.expected_bits(), fresh.expected_bits());
        for (a, f) in aged.records.iter().zip(&fresh.records) {
            assert_eq!(a.board_seed, f.board_seed);
            assert_eq!(a.margins_ps, f.margins_ps);
        }
    }

    #[test]
    fn zero_years_aging_is_the_fresh_path() {
        let sim = SiliconSim::default_spartan;
        let config = FleetConfig {
            boards: 6,
            units: 60,
            cols: 6,
            stages: 3,
            ..FleetConfig::default()
        };
        let fresh = FleetEngine::new(sim(), config.clone())
            .unwrap()
            .run_on(9, 2);
        let zero = FleetEngine::new(
            sim(),
            FleetConfig {
                aging: Some(FleetAging {
                    model: AgingModel::default(),
                    years: 0.0,
                }),
                ..config
            },
        )
        .unwrap()
        .run_on(9, 2);
        assert_eq!(zero.records, fresh.records);
    }

    #[test]
    fn aged_fleet_stays_deterministic_across_thread_counts() {
        let engine = FleetEngine::new(
            SiliconSim::default_spartan(),
            FleetConfig {
                boards: 8,
                units: 60,
                cols: 6,
                stages: 3,
                aging: Some(FleetAging {
                    model: AgingModel::default(),
                    years: 7.0,
                }),
                ..FleetConfig::default()
            },
        )
        .unwrap();
        let serial = engine.run_serial(3);
        for threads in [2, 4] {
            assert_eq!(engine.run_on(3, threads).records, serial.records);
        }
    }

    #[test]
    fn invalid_aging_configs_are_rejected() {
        let bad = |aging| {
            FleetEngine::new(
                SiliconSim::default_spartan(),
                FleetConfig {
                    boards: 2,
                    units: 60,
                    cols: 6,
                    stages: 3,
                    aging: Some(aging),
                    ..FleetConfig::default()
                },
            )
            .unwrap_err()
        };
        assert!(matches!(
            bad(FleetAging {
                model: AgingModel::default(),
                years: f64::NAN,
            }),
            Error::Fleet(_)
        ));
        assert!(matches!(
            bad(FleetAging {
                model: AgingModel {
                    reference_years: 0.0,
                    ..AgingModel::default()
                },
                years: 1.0,
            }),
            Error::Fleet(_)
        ));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let sim = SiliconSim::default_spartan;
        let bad = |cfg: FleetConfig| FleetEngine::new(sim(), cfg).unwrap_err();
        assert!(matches!(
            bad(FleetConfig {
                boards: 0,
                ..FleetConfig::default()
            }),
            Error::Fleet(_)
        ));
        assert!(matches!(
            bad(FleetConfig {
                votes: 2,
                ..FleetConfig::default()
            }),
            Error::Fleet(_)
        ));
        assert!(matches!(
            bad(FleetConfig {
                units: 4,
                stages: 5,
                ..FleetConfig::default()
            }),
            Error::Fleet(_)
        ));
        assert!(matches!(
            bad(FleetConfig {
                cols: 0,
                ..FleetConfig::default()
            }),
            Error::Fleet(_)
        ));
    }

    /// A synthetic run with ragged bit counts and corner lists — the
    /// shape fault exclusions produce.
    fn ragged_run() -> FleetRun {
        let record =
            |index: usize, bits: &str, flips: Vec<usize>, erasures: Vec<usize>| BoardRecord {
                board_index: index,
                board_seed: index as u64,
                expected_bits: BitVec::from_binary_str(bits).expect("binary literal"),
                margins_ps: vec![1.0; bits.len()],
                corner_flips: flips,
                corner_erasures: erasures,
            };
        FleetRun {
            records: vec![
                record(0, "10110", vec![1, 0], vec![0, 0]),
                // Shorter bit-string (two pairs excluded) and one
                // erased bit at the second corner.
                record(1, "011", vec![0, 1], vec![0, 1]),
                // Missing the second corner entirely.
                record(2, "11010", vec![2], vec![0]),
                // No bits at all.
                record(3, "", vec![0, 0], vec![0, 0]),
            ],
            quarantined: Vec::new(),
            faults: FaultSummary::default(),
            elapsed: Duration::from_millis(1),
            threads: 1,
        }
    }

    #[test]
    fn uniqueness_compares_ragged_boards_over_the_common_prefix() {
        let run = ragged_run();
        // Board 3 (empty) pairs with the other three are skipped; the
        // remaining three pairs compare over min-length prefixes:
        // (0,1): 101 vs 011 -> 2/3; (0,2): 10110 vs 11010 -> 2/5;
        // (1,2): 011 vs 110 -> 2/3.
        let expected = (2.0 / 3.0 + 2.0 / 5.0 + 2.0 / 3.0) / 3.0;
        let got = run.uniqueness().expect("three comparable pairs");
        assert!((got - expected).abs() < 1e-12, "got {got}, want {expected}");
    }

    #[test]
    fn corner_flip_rates_tolerate_ragged_corners_and_erasures() {
        let run = ragged_run();
        let rates = run.corner_flip_rates();
        assert_eq!(rates.len(), 2, "corner count is the maximum over records");
        // Corner 0: all four boards contribute (5+3+5+0 bits, 1+0+2+0 flips).
        assert!(
            (rates[0] - 3.0 / 13.0).abs() < 1e-12,
            "corner 0: {}",
            rates[0]
        );
        // Corner 1: board 2 has no such corner; board 1's erased bit
        // leaves the denominator (5 + (3-1) + 0 bits, 0+1+0 flips).
        assert!(
            (rates[1] - 1.0 / 7.0).abs() < 1e-12,
            "corner 1: {}",
            rates[1]
        );
    }

    #[test]
    fn equal_length_statistics_match_the_strict_formulas() {
        // On a healthy (equal-length) run the prefix-tolerant paths
        // must reproduce the historical values exactly.
        let run = small_engine().run_on(7, 2);
        let strict_uniqueness = {
            let mut sum = 0.0;
            let mut pairs = 0usize;
            for i in 0..run.records.len() {
                for j in i + 1..run.records.len() {
                    let (a, b) = (&run.records[i].expected_bits, &run.records[j].expected_bits);
                    assert_eq!(a.len(), b.len());
                    sum += a.hamming_distance(b).expect("equal lengths") as f64 / a.len() as f64;
                    pairs += 1;
                }
            }
            sum / pairs as f64
        };
        assert_eq!(run.uniqueness(), Some(strict_uniqueness));
    }
}
