//! The traditional RO PUF baseline.
//!
//! Two identically designed rings with *every* inverter included; the bit
//! is the sign of their frequency (here: delay) difference. This is the
//! baseline the paper's Figure 4 and §IV.E compare against: it wastes the
//! per-stage delay information, so its margins — and therefore its
//! reliability — are whatever fabrication happened to produce.

use rand::Rng;
use ropuf_num::bits::BitVec;
use ropuf_silicon::{Board, DelayProbe, Environment, Technology};

use crate::config::ConfigVector;
use crate::puf::PairSpec;

/// A traditional RO PUF: the same pair floorplan as
/// [`ConfigurableRoPuf`](crate::puf::ConfigurableRoPuf), with all
/// inverters always selected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraditionalRoPuf {
    specs: Vec<PairSpec>,
}

/// One enrolled traditional pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TraditionalPair {
    spec: PairSpec,
    expected_bit: bool,
    margin_ps: f64,
}

impl TraditionalPair {
    /// The floorplan entry.
    pub fn spec(&self) -> &PairSpec {
        &self.spec
    }

    /// Bit recorded at enrollment (`true` = top slower).
    pub fn expected_bit(&self) -> bool {
        self.expected_bit
    }

    /// Measured delay-difference magnitude at enrollment, picoseconds.
    pub fn margin_ps(&self) -> f64 {
        self.margin_ps
    }
}

/// An enrolled traditional PUF.
#[derive(Debug, Clone, PartialEq)]
pub struct TraditionalEnrollment {
    pairs: Vec<Option<TraditionalPair>>,
    stages: usize,
}

impl TraditionalRoPuf {
    /// Builds a traditional PUF from explicit pair specs.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn new(specs: Vec<PairSpec>) -> Self {
        assert!(!specs.is_empty(), "a PUF needs at least one ring pair");
        Self { specs }
    }

    /// Tiles `total_units` into consecutive `stages`-per-ring pairs,
    /// identical to
    /// [`ConfigurableRoPuf::tiled`](crate::puf::ConfigurableRoPuf::tiled)
    /// so comparisons are apples-to-apples.
    ///
    /// # Panics
    ///
    /// Panics if fewer than one pair fits.
    pub fn tiled(total_units: usize, stages: usize) -> Self {
        assert!(stages > 0, "rings need at least one stage");
        let pairs = total_units / (2 * stages);
        assert!(
            pairs > 0,
            "{total_units} units cannot host a {stages}-stage pair"
        );
        Self::new(
            (0..pairs)
                .map(|p| PairSpec::split_at(p * 2 * stages, stages))
                .collect(),
        )
    }

    /// The floorplan's pair specs.
    pub fn specs(&self) -> &[PairSpec] {
        &self.specs
    }

    /// Number of ring pairs.
    pub fn pair_count(&self) -> usize {
        self.specs.len()
    }

    /// Enrolls: measures every pair at `env` and records the sign and
    /// magnitude of the delay difference. Pairs with a magnitude below
    /// `threshold_ps` are excluded (§IV.E's `Rth`).
    pub fn enroll<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &Board,
        tech: &Technology,
        env: Environment,
        probe: &DelayProbe,
        threshold_ps: f64,
    ) -> TraditionalEnrollment {
        let stages = self.specs[0].stages();
        let config = ConfigVector::all_selected(stages);
        let pairs = self
            .specs
            .iter()
            .map(|spec| {
                let pair = spec.bind(board);
                let d_top = probe.measure_ps(rng, pair.top().ring_delay_ps(&config, env, tech));
                let d_bottom =
                    probe.measure_ps(rng, pair.bottom().ring_delay_ps(&config, env, tech));
                let diff = d_top - d_bottom;
                if diff.abs() < threshold_ps {
                    None
                } else {
                    Some(TraditionalPair {
                        spec: spec.clone(),
                        expected_bit: diff > 0.0,
                        margin_ps: diff.abs(),
                    })
                }
            })
            .collect();
        TraditionalEnrollment { pairs, stages }
    }
}

impl TraditionalEnrollment {
    /// Per-pair records; `None` marks threshold-excluded pairs.
    pub fn pairs(&self) -> &[Option<TraditionalPair>] {
        &self.pairs
    }

    /// Number of pairs producing bits.
    pub fn bit_count(&self) -> usize {
        self.pairs.iter().flatten().count()
    }

    /// Bits recorded at enrollment (excluded pairs skipped).
    pub fn expected_bits(&self) -> BitVec {
        self.pairs
            .iter()
            .flatten()
            .map(TraditionalPair::expected_bit)
            .collect()
    }

    /// Enrollment margins (excluded pairs skipped), picoseconds.
    pub fn margins_ps(&self) -> Vec<f64> {
        self.pairs
            .iter()
            .flatten()
            .map(TraditionalPair::margin_ps)
            .collect()
    }

    /// Generates a response at `env`.
    pub fn respond<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &Board,
        tech: &Technology,
        env: Environment,
        probe: &DelayProbe,
    ) -> BitVec {
        let config = ConfigVector::all_selected(self.stages);
        self.pairs
            .iter()
            .flatten()
            .map(|p| {
                let pair = p.spec.bind(board);
                let d_top = probe.measure_ps(rng, pair.top().ring_delay_ps(&config, env, tech));
                let d_bottom =
                    probe.measure_ps(rng, pair.bottom().ring_delay_ps(&config, env, tech));
                d_top > d_bottom
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_silicon::board::BoardId;
    use ropuf_silicon::SiliconSim;

    fn setup(units: usize) -> (Board, Technology, StdRng) {
        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(77);
        let board = sim.grow_board_with_id(&mut rng, BoardId(0), units, 16);
        (board, *sim.technology(), rng)
    }

    #[test]
    fn bit_count_matches_floorplan() {
        let (board, tech, mut rng) = setup(80);
        let puf = TraditionalRoPuf::tiled(80, 5);
        assert_eq!(puf.pair_count(), 8);
        let e = puf.enroll(
            &mut rng,
            &board,
            &tech,
            Environment::nominal(),
            &DelayProbe::noiseless(),
            0.0,
        );
        assert_eq!(e.bit_count(), 8);
        assert_eq!(e.expected_bits().len(), 8);
    }

    #[test]
    fn noiseless_response_reproduces_enrollment() {
        let (board, tech, mut rng) = setup(60);
        let puf = TraditionalRoPuf::tiled(60, 5);
        let env = Environment::nominal();
        let e = puf.enroll(&mut rng, &board, &tech, env, &DelayProbe::noiseless(), 0.0);
        let r = e.respond(&mut rng, &board, &tech, env, &DelayProbe::noiseless());
        assert_eq!(r, e.expected_bits());
    }

    #[test]
    fn threshold_prunes_low_margin_pairs() {
        let (board, tech, mut rng) = setup(200);
        let puf = TraditionalRoPuf::tiled(200, 5);
        let env = Environment::nominal();
        let all = puf.enroll(&mut rng, &board, &tech, env, &DelayProbe::noiseless(), 0.0);
        let margins = all.margins_ps();
        let median = {
            let mut m = margins.clone();
            m.sort_by(f64::total_cmp);
            m[m.len() / 2]
        };
        let pruned = puf.enroll(
            &mut rng,
            &board,
            &tech,
            env,
            &DelayProbe::noiseless(),
            median,
        );
        assert!(pruned.bit_count() < all.bit_count());
        assert!(pruned.margins_ps().iter().all(|&m| m >= median));
    }

    #[test]
    fn configurable_margins_beat_traditional() {
        use crate::puf::{ConfigurableRoPuf, EnrollOptions, SelectionMode};
        use crate::ParityPolicy;
        let (board, tech, _) = setup(150);
        let env = Environment::nominal();
        let trad = TraditionalRoPuf::tiled(150, 5);
        let conf = ConfigurableRoPuf::tiled(150, 5);
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(1);
        let et = trad.enroll(&mut rng1, &board, &tech, env, &DelayProbe::noiseless(), 0.0);
        let ec = conf.enroll(
            &mut rng2,
            &board,
            &tech,
            env,
            &EnrollOptions {
                mode: SelectionMode::Case2,
                parity: ParityPolicy::Ignore,
                probe: DelayProbe::noiseless(),
                ..EnrollOptions::default()
            },
        );
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&ec.margins_ps()) > mean(&et.margins_ps()),
            "configurable {} !> traditional {}",
            mean(&ec.margins_ps()),
            mean(&et.margins_ps())
        );
    }

    #[test]
    #[should_panic(expected = "at least one ring pair")]
    fn empty_specs_panic() {
        let _ = TraditionalRoPuf::new(vec![]);
    }
}
