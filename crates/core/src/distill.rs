//! The regression-based distiller (Yin & Qu, DAC 2013 — the paper's
//! reference \[18\]).
//!
//! Raw RO frequencies carry a large *systematic* spatial component
//! (process gradients across the die) that is common to all chips of a
//! design and therefore leaks structure: the paper reports that PUF bits
//! extracted from raw data fail the NIST randomness tests. The distiller
//! fits a low-order bivariate polynomial of the measurement value over
//! die coordinates and keeps only the residual — the local random
//! variation that is actually unique per chip.
//!
//! # Examples
//!
//! ```
//! use ropuf_core::distill::Distiller;
//!
//! let positions = [(-1.0, -1.0), (1.0, -1.0), (-1.0, 1.0), (1.0, 1.0)];
//! // A linear gradient across the die plus a local bump.
//! let values = [9.0, 10.5, 11.0, 12.0];
//! let distiller = Distiller::new(1);
//! let residuals = distiller.residuals(&values, &positions)?;
//! // The linear trend is gone; residuals sum to ~0.
//! assert!(residuals.iter().sum::<f64>().abs() < 1e-9);
//! # Ok::<(), ropuf_core::distill::DistillError>(())
//! ```

use std::fmt;

use ropuf_num::linalg::{poly2d_design_matrix, poly2d_terms, SolveError};

/// Removes systematic spatial variation by polynomial regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Distiller {
    degree: usize,
}

impl Default for Distiller {
    /// Degree-2 surface — matches the simulator's systematic field and
    /// the DAC'13 distiller's recommendation.
    fn default() -> Self {
        Self::new(2)
    }
}

impl Distiller {
    /// Creates a distiller fitting a total-degree-`degree` bivariate
    /// polynomial (degree 0 removes just the mean).
    pub fn new(degree: usize) -> Self {
        Self { degree }
    }

    /// The polynomial degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of basis terms the fit uses.
    pub fn basis_size(&self) -> usize {
        poly2d_terms(self.degree).len()
    }

    /// Fits the systematic surface to `(values, positions)` and returns
    /// the residuals `value − fit`.
    ///
    /// # Errors
    ///
    /// * [`DistillError::LengthMismatch`] if the slices differ in length
    ///   or are empty.
    /// * [`DistillError::Underdetermined`] if there are fewer samples
    ///   than basis terms.
    /// * [`DistillError::Singular`] if the positions are degenerate
    ///   (e.g. all samples at one point).
    pub fn residuals(
        &self,
        values: &[f64],
        positions: &[(f64, f64)],
    ) -> Result<Vec<f64>, DistillError> {
        if values.is_empty() || values.len() != positions.len() {
            return Err(DistillError::LengthMismatch {
                values: values.len(),
                positions: positions.len(),
            });
        }
        let basis = self.basis_size();
        if values.len() < basis {
            return Err(DistillError::Underdetermined {
                samples: values.len(),
                basis,
            });
        }
        let design = poly2d_design_matrix(positions, self.degree);
        let beta = design.least_squares(values).map_err(|e| match e {
            SolveError::Singular { .. } => DistillError::Singular,
            other => DistillError::Internal(other),
        })?;
        let fitted = design.matvec(&beta);
        Ok(values.iter().zip(&fitted).map(|(v, f)| v - f).collect())
    }

    /// Returns the fitted systematic surface values (the complement of
    /// [`residuals`](Self::residuals)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`residuals`](Self::residuals).
    pub fn fitted(
        &self,
        values: &[f64],
        positions: &[(f64, f64)],
    ) -> Result<Vec<f64>, DistillError> {
        let residuals = self.residuals(values, positions)?;
        Ok(values.iter().zip(&residuals).map(|(v, r)| v - r).collect())
    }
}

/// Errors from [`Distiller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistillError {
    /// Input slices are empty or differ in length.
    LengthMismatch {
        /// Length of the value slice.
        values: usize,
        /// Length of the position slice.
        positions: usize,
    },
    /// Fewer samples than polynomial basis terms.
    Underdetermined {
        /// Number of samples supplied.
        samples: usize,
        /// Number of basis terms required.
        basis: usize,
    },
    /// Degenerate sample positions (rank-deficient design matrix).
    Singular,
    /// Unexpected solver failure (should not occur for valid inputs).
    Internal(SolveError),
}

impl fmt::Display for DistillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistillError::LengthMismatch { values, positions } => write!(
                f,
                "values ({values}) and positions ({positions}) must be equal-length and non-empty"
            ),
            DistillError::Underdetermined { samples, basis } => write!(
                f,
                "{samples} samples cannot determine a {basis}-term polynomial surface"
            ),
            DistillError::Singular => {
                write!(
                    f,
                    "sample positions are degenerate; the surface fit is singular"
                )
            }
            DistillError::Internal(e) => write!(f, "internal solver failure: {e}"),
        }
    }
}

impl std::error::Error for DistillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistillError::Internal(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<(f64, f64)> {
        let mut pts = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let norm = |k: usize| 2.0 * k as f64 / (n - 1) as f64 - 1.0;
                pts.push((norm(i), norm(j)));
            }
        }
        pts
    }

    #[test]
    fn removes_exact_polynomial_field() {
        let pts = grid(5);
        let values: Vec<f64> = pts
            .iter()
            .map(|&(x, y)| 100.0 + 3.0 * x - 2.0 * y + 0.5 * x * x - 0.7 * x * y + 0.2 * y * y)
            .collect();
        let res = Distiller::new(2).residuals(&values, &pts).unwrap();
        for r in res {
            assert!(r.abs() < 1e-9, "residual {r}");
        }
    }

    #[test]
    fn preserves_random_component() {
        let pts = grid(6);
        // Systematic field + deterministic pseudo-random bumps.
        let noise: Vec<f64> = (0..pts.len())
            .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
            .collect();
        let values: Vec<f64> = pts
            .iter()
            .zip(&noise)
            .map(|(&(x, y), &n)| 50.0 + 4.0 * x + 1.0 * y + n)
            .collect();
        let res = Distiller::new(2).residuals(&values, &pts).unwrap();
        // Residuals should correlate strongly with the injected noise.
        let corr = ropuf_num::stats::pearson(&res, &noise).unwrap();
        assert!(corr > 0.95, "corr {corr}");
    }

    #[test]
    fn degree_zero_removes_mean_only() {
        let pts = grid(3);
        let values: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let res = Distiller::new(0).residuals(&values, &pts).unwrap();
        let mean = 4.0;
        for (r, v) in res.iter().zip(&values) {
            assert!((r - (v - mean)).abs() < 1e-12);
        }
    }

    #[test]
    fn residuals_plus_fitted_reconstruct_values() {
        let pts = grid(4);
        let values: Vec<f64> = pts
            .iter()
            .map(|&(x, y)| 7.0 + x * y + (x * 9.0).sin())
            .collect();
        let d = Distiller::default();
        let res = d.residuals(&values, &pts).unwrap();
        let fit = d.fitted(&values, &pts).unwrap();
        for ((v, r), f) in values.iter().zip(&res).zip(&fit) {
            assert!((v - (r + f)).abs() < 1e-9);
        }
    }

    #[test]
    fn length_mismatch_is_reported() {
        let err = Distiller::default()
            .residuals(&[1.0, 2.0], &[(0.0, 0.0)])
            .unwrap_err();
        assert_eq!(
            err,
            DistillError::LengthMismatch {
                values: 2,
                positions: 1
            }
        );
        assert!(err.to_string().contains("equal-length"));
    }

    #[test]
    fn underdetermined_is_reported() {
        let err = Distiller::new(2)
            .residuals(&[1.0, 2.0, 3.0], &[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)])
            .unwrap_err();
        assert!(matches!(
            err,
            DistillError::Underdetermined {
                samples: 3,
                basis: 6
            }
        ));
    }

    #[test]
    fn degenerate_positions_are_singular() {
        let pts = vec![(0.5, 0.5); 10];
        let values = vec![1.0; 10];
        let err = Distiller::new(1).residuals(&values, &pts).unwrap_err();
        assert_eq!(err, DistillError::Singular);
    }

    #[test]
    fn works_on_simulated_board() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use ropuf_silicon::board::BoardId;
        use ropuf_silicon::SiliconSim;

        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(31);
        let board = sim.grow_board_with_id(&mut rng, BoardId(0), 256, 16);
        let values: Vec<f64> = board.units().iter().map(|u| u.inverter_ps()).collect();
        let positions = board.positions();
        let res = Distiller::default().residuals(&values, &positions).unwrap();
        // Distillation shrinks the spread: systematic + inter-die
        // variation is removed, leaving only the local random part.
        let spread = |v: &[f64]| ropuf_num::stats::std_dev(v).unwrap();
        assert!(
            spread(&res) < spread(&values),
            "{} !< {}",
            spread(&res),
            spread(&values)
        );
        // And the residual spread should be close to sigma_random × 100 ps.
        assert!(spread(&res) < 2.0, "residual spread {}", spread(&res));
        assert!(spread(&res) > 0.5, "residual spread {}", spread(&res));
    }
}
