//! A repetition-code fuzzy extractor (code-offset construction).
//!
//! §III.C of the paper argues that maximizing pair margins "can
//! eliminate the cost of ECC circuitry" that traditional RO PUFs need.
//! This module provides that ECC machinery — the standard code-offset
//! secure sketch of Dodis et al. (the paper's reference \[11\]) with a
//! majority-voted repetition code — both because a practical key-storage
//! deployment wants it as a safety net, and so the `repro ablate-ecc`
//! experiment can quantify exactly how much ECC the traditional scheme
//! needs to match a bare configurable PUF.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use ropuf_core::fuzzy::FuzzyExtractor;
//! use ropuf_num::bits::BitVec;
//!
//! let fx = FuzzyExtractor::new(3);
//! let response = BitVec::from_binary_str("110010011100101101100111").unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let (key, helper) = fx.generate(&mut rng, &response);
//! assert_eq!(key.len(), 8); // 24 response bits / repetition 3
//!
//! // One flipped response bit per block is corrected.
//! let mut noisy = response.clone();
//! noisy.set(0, !noisy.get(0).unwrap());
//! assert_eq!(fx.reproduce(&noisy, &helper)?, key);
//! # Ok::<(), ropuf_core::fuzzy::ReproduceError>(())
//! ```

use rand::Rng;
use ropuf_num::bits::BitVec;

/// A fuzzy extractor over an odd-length repetition code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzyExtractor {
    repetition: usize,
}

impl FuzzyExtractor {
    /// Creates an extractor with the given repetition factor.
    ///
    /// # Panics
    ///
    /// Panics if `repetition` is zero or even (majority voting needs an
    /// odd block).
    pub fn new(repetition: usize) -> Self {
        assert!(
            repetition % 2 == 1,
            "repetition factor must be odd, got {repetition}"
        );
        Self { repetition }
    }

    /// The repetition factor.
    pub fn repetition(&self) -> usize {
        self.repetition
    }

    /// Errors per block the code corrects: `(r − 1) / 2`.
    pub fn correctable_errors(&self) -> usize {
        (self.repetition - 1) / 2
    }

    /// Key bits extracted from a response of `response_bits`.
    pub fn key_bits(&self, response_bits: usize) -> usize {
        response_bits / self.repetition
    }

    /// Generation phase: derives a key and public helper data from an
    /// enrollment-time response.
    ///
    /// Code-offset construction: a uniform key is drawn, encoded with
    /// the repetition code, and XORed onto the response; the helper data
    /// is the XOR (information-theoretically independent of the key when
    /// the response is uniform). Trailing response bits that do not fill
    /// a block are ignored.
    ///
    /// # Panics
    ///
    /// Panics if the response holds fewer bits than one block.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, response: &BitVec) -> (BitVec, BitVec) {
        let k = self.key_bits(response.len());
        assert!(
            k > 0,
            "response too short for repetition {}",
            self.repetition
        );
        let key: BitVec = (0..k).map(|_| rng.gen::<bool>()).collect();
        let codeword = self.encode(&key);
        let used: BitVec = response.iter().take(k * self.repetition).collect();
        (key, used.xor(&codeword))
    }

    /// Commit phase for a *caller-supplied* key: computes the helper
    /// data that makes [`reproduce`](Self::reproduce) return exactly
    /// `key` from this response (the NXP-style `SetKey` operation, vs
    /// [`generate`](Self::generate)'s `GenerateKey`).
    ///
    /// # Errors
    ///
    /// [`ReproduceError::ResponseTooShort`] when the response cannot
    /// cover `key.len()` repetition blocks, and
    /// [`ReproduceError::MalformedHelper`] when `key` is empty.
    pub fn commit(&self, key: &BitVec, response: &BitVec) -> Result<BitVec, ReproduceError> {
        if key.is_empty() {
            return Err(ReproduceError::MalformedHelper {
                helper_bits: 0,
                repetition: self.repetition,
            });
        }
        let needed = key.len() * self.repetition;
        if response.len() < needed {
            return Err(ReproduceError::ResponseTooShort {
                response_bits: response.len(),
                required: needed,
            });
        }
        let codeword = self.encode(key);
        let used: BitVec = response.iter().take(needed).collect();
        Ok(used.xor(&codeword))
    }

    /// Reproduction phase: recovers the key from a (noisy) response and
    /// the helper data.
    ///
    /// # Errors
    ///
    /// [`ReproduceError`] if the response is shorter than the helper
    /// data or the helper length is not a multiple of the repetition
    /// factor.
    pub fn reproduce(&self, response: &BitVec, helper: &BitVec) -> Result<BitVec, ReproduceError> {
        if !helper.len().is_multiple_of(self.repetition) {
            return Err(ReproduceError::MalformedHelper {
                helper_bits: helper.len(),
                repetition: self.repetition,
            });
        }
        if response.len() < helper.len() {
            return Err(ReproduceError::ResponseTooShort {
                response_bits: response.len(),
                required: helper.len(),
            });
        }
        let used: BitVec = response.iter().take(helper.len()).collect();
        let offset = used.xor(helper);
        Ok(self.decode(&offset))
    }

    /// Expected key-failure probability for i.i.d. response bit error
    /// rate `ber`: `1 − (1 − p_block)^k` where `p_block` is the tail of
    /// the binomial beyond the correction radius.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is outside `[0, 1]`.
    pub fn failure_probability(&self, ber: f64, key_bits: usize) -> f64 {
        assert!(
            (0.0..=1.0).contains(&ber),
            "bit error rate must be in [0,1]"
        );
        let r = self.repetition;
        let t = self.correctable_errors();
        // P(block fails) = P(Binomial(r, ber) > t).
        let mut p_ok = 0.0;
        for e in 0..=t {
            p_ok += binomial(r, e) * ber.powi(e as i32) * (1.0 - ber).powi((r - e) as i32);
        }
        1.0 - p_ok.powi(key_bits as i32)
    }

    fn encode(&self, key: &BitVec) -> BitVec {
        let mut out = BitVec::with_capacity(key.len() * self.repetition);
        for b in key.iter() {
            for _ in 0..self.repetition {
                out.push(b);
            }
        }
        out
    }

    fn decode(&self, blocks: &BitVec) -> BitVec {
        let k = blocks.len() / self.repetition;
        (0..k)
            .map(|i| {
                let ones = (0..self.repetition)
                    .filter(|&j| blocks.get(i * self.repetition + j).expect("in range"))
                    .count();
                ones * 2 > self.repetition
            })
            .collect()
    }
}

fn binomial(n: usize, k: usize) -> f64 {
    let mut acc = 1.0;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Errors from [`FuzzyExtractor::reproduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReproduceError {
    /// Helper length is not a whole number of repetition blocks.
    MalformedHelper {
        /// Helper data length in bits.
        helper_bits: usize,
        /// The extractor's repetition factor.
        repetition: usize,
    },
    /// The response carries fewer bits than the helper data covers.
    ResponseTooShort {
        /// Response length in bits.
        response_bits: usize,
        /// Bits required.
        required: usize,
    },
}

impl std::fmt::Display for ReproduceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReproduceError::MalformedHelper {
                helper_bits,
                repetition,
            } => write!(
                f,
                "helper data of {helper_bits} bits is not a multiple of repetition {repetition}"
            ),
            ReproduceError::ResponseTooShort {
                response_bits,
                required,
            } => {
                write!(
                    f,
                    "response of {response_bits} bits cannot cover {required} helper bits"
                )
            }
        }
    }
}

impl std::error::Error for ReproduceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_response(n: usize, seed: u64) -> BitVec {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<bool>()).collect()
    }

    #[test]
    fn clean_round_trip() {
        let fx = FuzzyExtractor::new(5);
        let response = random_response(100, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let (key, helper) = fx.generate(&mut rng, &response);
        assert_eq!(key.len(), 20);
        assert_eq!(helper.len(), 100);
        assert_eq!(fx.reproduce(&response, &helper).unwrap(), key);
    }

    #[test]
    fn corrects_up_to_radius_per_block() {
        let fx = FuzzyExtractor::new(5);
        let response = random_response(50, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let (key, helper) = fx.generate(&mut rng, &response);
        // Flip 2 bits in every 5-bit block: still within radius.
        let mut noisy = response.clone();
        for block in 0..10 {
            noisy.set(block * 5, !noisy.get(block * 5).unwrap());
            noisy.set(block * 5 + 3, !noisy.get(block * 5 + 3).unwrap());
        }
        assert_eq!(fx.reproduce(&noisy, &helper).unwrap(), key);
    }

    #[test]
    fn fails_beyond_radius() {
        let fx = FuzzyExtractor::new(3);
        let response = random_response(30, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let (key, helper) = fx.generate(&mut rng, &response);
        // Flip an entire block: that key bit must invert.
        let mut noisy = response.clone();
        for j in 0..3 {
            noisy.set(j, !noisy.get(j).unwrap());
        }
        let recovered = fx.reproduce(&noisy, &helper).unwrap();
        assert_ne!(recovered, key);
        assert_eq!(recovered.get(0), key.get(0).map(|b| !b));
        assert_eq!(
            recovered.iter().skip(1).collect::<Vec<_>>(),
            key.iter().skip(1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn burst_errors_beyond_radius_fail_deterministically() {
        // A contiguous burst — the shape a stuck counter or a long
        // glitch produces — spanning whole blocks. The failure is not
        // an `Err`: reproduce returns Ok with exactly the key bits of
        // the overwhelmed blocks inverted, every time.
        let fx = FuzzyExtractor::new(3);
        let response = random_response(30, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let (key, helper) = fx.generate(&mut rng, &response);
        // Burst across bits 3..9: blocks 1 and 2 fully flipped.
        let mut noisy = response.clone();
        for j in 3..9 {
            noisy.set(j, !noisy.get(j).unwrap());
        }
        let first = fx.reproduce(&noisy, &helper).unwrap();
        assert_ne!(first, key, "a two-block burst exceeds the radius");
        for (i, (got, want)) in first.iter().zip(key.iter()).enumerate() {
            if i == 1 || i == 2 {
                assert_eq!(got, !want, "overwhelmed block {i} inverts");
            } else {
                assert_eq!(got, want, "block {i} untouched by the burst");
            }
        }
        // Deterministic: the same wrong key on every attempt.
        for _ in 0..3 {
            assert_eq!(fx.reproduce(&noisy, &helper).unwrap(), first);
        }
    }

    #[test]
    fn burst_straddling_a_block_boundary_corrupts_only_overwhelmed_blocks() {
        let fx = FuzzyExtractor::new(5);
        let response = random_response(25, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let (key, helper) = fx.generate(&mut rng, &response);
        // Burst over bits 3..12: 2 errors in block 0 (inside radius),
        // 5 in block 1 (beyond), 2 in block 2 (inside).
        let mut noisy = response.clone();
        for j in 3..12 {
            noisy.set(j, !noisy.get(j).unwrap());
        }
        let recovered = fx.reproduce(&noisy, &helper).unwrap();
        for (i, (got, want)) in recovered.iter().zip(key.iter()).enumerate() {
            if i == 1 {
                assert_eq!(got, !want, "fully flipped block inverts");
            } else {
                assert_eq!(got, want, "radius-2 damage is corrected in block {i}");
            }
        }
    }

    #[test]
    fn malformed_inputs_err_deterministically() {
        let fx = FuzzyExtractor::new(3);
        let response = random_response(30, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let (_key, helper) = fx.generate(&mut rng, &response);
        // Helper not a multiple of the repetition factor.
        let bad_helper: BitVec = helper.iter().take(29).collect();
        for _ in 0..2 {
            assert!(matches!(
                fx.reproduce(&response, &bad_helper),
                Err(ReproduceError::MalformedHelper {
                    helper_bits: 29,
                    repetition: 3
                })
            ));
        }
        // Response shorter than the helper string.
        let short: BitVec = response.iter().take(12).collect();
        for _ in 0..2 {
            assert!(matches!(
                fx.reproduce(&short, &helper),
                Err(ReproduceError::ResponseTooShort { .. })
            ));
        }
    }

    #[test]
    fn commit_round_trips_a_chosen_key() {
        let fx = FuzzyExtractor::new(3);
        let response = random_response(30, 20);
        let key = BitVec::from_binary_str("1011001110").unwrap();
        let helper = fx.commit(&key, &response).unwrap();
        assert_eq!(helper.len(), 30);
        assert_eq!(fx.reproduce(&response, &helper).unwrap(), key);
        // Still corrects within the radius.
        let mut noisy = response.clone();
        noisy.set(4, !noisy.get(4).unwrap());
        assert_eq!(fx.reproduce(&noisy, &helper).unwrap(), key);
    }

    #[test]
    fn commit_rejects_bad_shapes() {
        let fx = FuzzyExtractor::new(5);
        let response = random_response(20, 21);
        let long_key = random_response(5, 22); // needs 25 response bits
        assert!(matches!(
            fx.commit(&long_key, &response),
            Err(ReproduceError::ResponseTooShort {
                response_bits: 20,
                required: 25
            })
        ));
        assert!(matches!(
            fx.commit(&BitVec::new(), &response),
            Err(ReproduceError::MalformedHelper { .. })
        ));
    }

    #[test]
    fn trailing_bits_are_ignored() {
        let fx = FuzzyExtractor::new(3);
        let response = random_response(32, 7); // 10 blocks + 2 spare bits
        let mut rng = StdRng::seed_from_u64(8);
        let (key, helper) = fx.generate(&mut rng, &response);
        assert_eq!(key.len(), 10);
        assert_eq!(helper.len(), 30);
        assert_eq!(fx.reproduce(&response, &helper).unwrap(), key);
    }

    #[test]
    fn repetition_one_is_plain_masking() {
        let fx = FuzzyExtractor::new(1);
        assert_eq!(fx.correctable_errors(), 0);
        let response = random_response(16, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let (key, helper) = fx.generate(&mut rng, &response);
        assert_eq!(fx.reproduce(&response, &helper).unwrap(), key);
    }

    #[test]
    fn reproduce_errors() {
        let fx = FuzzyExtractor::new(3);
        let helper = random_response(7, 11); // not a multiple of 3
        let response = random_response(10, 12);
        assert!(matches!(
            fx.reproduce(&response, &helper),
            Err(ReproduceError::MalformedHelper { .. })
        ));
        let helper = random_response(12, 13);
        let short = random_response(6, 14);
        let e = fx.reproduce(&short, &helper).unwrap_err();
        assert!(matches!(e, ReproduceError::ResponseTooShort { .. }));
        assert!(e.to_string().contains("cannot cover"));
    }

    #[test]
    fn failure_probability_sanity() {
        let fx = FuzzyExtractor::new(3);
        assert_eq!(fx.failure_probability(0.0, 128), 0.0);
        // p_block = 3 p² (1-p) + p³ at r = 3.
        let p: f64 = 0.01;
        let p_block = 3.0 * p * p * (1.0 - p) + p * p * p;
        let expect = 1.0 - (1.0 - p_block).powi(128);
        assert!((fx.failure_probability(p, 128) - expect).abs() < 1e-12);
        // Larger repetition lowers the failure rate.
        assert!(
            FuzzyExtractor::new(5).failure_probability(0.05, 64)
                < FuzzyExtractor::new(3).failure_probability(0.05, 64)
        );
    }

    #[test]
    fn empirical_failure_rate_matches_model() {
        let fx = FuzzyExtractor::new(3);
        let ber = 0.08;
        let key_bits = 16;
        let trials = 3000;
        let mut rng = StdRng::seed_from_u64(15);
        let mut failures = 0;
        for t in 0..trials {
            let response = random_response(key_bits * 3, 1000 + t);
            let (key, helper) = fx.generate(&mut rng, &response);
            let noisy: BitVec = response
                .iter()
                .map(|b| if rng.gen::<f64>() < ber { !b } else { b })
                .collect();
            if fx.reproduce(&noisy, &helper).unwrap() != key {
                failures += 1;
            }
        }
        let empirical = failures as f64 / trials as f64;
        let model = fx.failure_probability(ber, key_bits);
        assert!(
            (empirical - model).abs() < 0.05,
            "empirical {empirical} vs model {model}"
        );
    }

    #[test]
    fn helper_is_uncorrelated_with_key_bits() {
        // Code-offset: with a uniform response, helper bits are uniform
        // regardless of the key. Check gross balance.
        let fx = FuzzyExtractor::new(3);
        let mut rng = StdRng::seed_from_u64(16);
        let mut ones = 0usize;
        let mut total = 0usize;
        for t in 0..200 {
            let response = random_response(60, 2000 + t);
            let (_, helper) = fx.generate(&mut rng, &response);
            ones += helper.count_ones();
            total += helper.len();
        }
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.02, "helper ones fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_repetition_panics() {
        let _ = FuzzyExtractor::new(4);
    }
}

/// A Toeplitz-matrix universal hash for privacy amplification.
///
/// The repetition-code sketch corrects errors but leaks `n − k` bits of
/// the response through the helper data; compressing the corrected key
/// with a seeded universal hash (the classic leftover-hash construction)
/// concentrates the remaining min-entropy into a shorter, near-uniform
/// key. The Toeplitz family is the standard choice: the matrix is
/// defined by one diagonal-constant seed of `input + output − 1` bits,
/// and hashing is GF(2) matrix-vector multiplication.
///
/// The seed is *public* (store it with the helper data); only the PUF
/// response is secret.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use ropuf_core::fuzzy::ToeplitzHash;
/// use ropuf_num::bits::BitVec;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let hash = ToeplitzHash::sample(&mut rng, 32, 16);
/// let x = BitVec::from_binary_str(&"10".repeat(16)).unwrap();
/// let digest = hash.hash(&x);
/// assert_eq!(digest.len(), 16);
/// // Linear over GF(2): H(a ⊕ b) = H(a) ⊕ H(b).
/// let y = BitVec::from_binary_str(&"01".repeat(16)).unwrap();
/// assert_eq!(hash.hash(&x.xor(&y)), hash.hash(&x).xor(&hash.hash(&y)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToeplitzHash {
    seed: BitVec,
    input_bits: usize,
    output_bits: usize,
}

impl ToeplitzHash {
    /// Builds a hash from an explicit seed.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or
    /// `seed.len() != input_bits + output_bits − 1`.
    pub fn new(seed: BitVec, input_bits: usize, output_bits: usize) -> Self {
        assert!(
            input_bits > 0 && output_bits > 0,
            "dimensions must be nonzero"
        );
        assert_eq!(
            seed.len(),
            input_bits + output_bits - 1,
            "a Toeplitz seed needs input + output - 1 bits"
        );
        Self {
            seed,
            input_bits,
            output_bits,
        }
    }

    /// Samples a uniform seed for the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, input_bits: usize, output_bits: usize) -> Self {
        assert!(
            input_bits > 0 && output_bits > 0,
            "dimensions must be nonzero"
        );
        let seed: BitVec = (0..input_bits + output_bits - 1)
            .map(|_| rng.gen::<bool>())
            .collect();
        Self::new(seed, input_bits, output_bits)
    }

    /// The public seed.
    pub fn seed(&self) -> &BitVec {
        &self.seed
    }

    /// Input length in bits.
    pub fn input_bits(&self) -> usize {
        self.input_bits
    }

    /// Output length in bits.
    pub fn output_bits(&self) -> usize {
        self.output_bits
    }

    /// Hashes `input` to `output_bits` bits:
    /// `out[i] = ⊕_j seed[i + j] · input[j]`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != input_bits`.
    pub fn hash(&self, input: &BitVec) -> BitVec {
        assert_eq!(input.len(), self.input_bits, "input length mismatch");
        (0..self.output_bits)
            .map(|i| {
                let mut acc = false;
                for j in 0..self.input_bits {
                    if input.get(j).expect("in range") && self.seed.get(i + j).expect("in range") {
                        acc = !acc;
                    }
                }
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod toeplitz_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_bits(rng: &mut StdRng, n: usize) -> BitVec {
        (0..n).map(|_| rng.gen::<bool>()).collect()
    }

    #[test]
    fn deterministic_and_seed_dependent() {
        let mut rng = StdRng::seed_from_u64(1);
        let h1 = ToeplitzHash::sample(&mut rng, 64, 16);
        let h2 = ToeplitzHash::sample(&mut rng, 64, 16);
        let x = random_bits(&mut rng, 64);
        assert_eq!(h1.hash(&x), h1.hash(&x));
        assert_ne!(
            h1.hash(&x),
            h2.hash(&x),
            "different seeds, different digests"
        );
    }

    #[test]
    fn linearity_over_gf2() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = ToeplitzHash::sample(&mut rng, 48, 12);
        for _ in 0..20 {
            let a = random_bits(&mut rng, 48);
            let b = random_bits(&mut rng, 48);
            assert_eq!(h.hash(&a.xor(&b)), h.hash(&a).xor(&h.hash(&b)));
        }
    }

    #[test]
    fn universal_collision_bound_holds_empirically() {
        // Pairwise: for fixed distinct a ≠ b, over random seeds,
        // P[H(a) = H(b)] = 2^{-output}. Check at output = 6.
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_bits(&mut rng, 32);
        let mut b = a.clone();
        b.set(5, !b.get(5).unwrap());
        let trials = 20_000;
        let collisions = (0..trials)
            .filter(|_| {
                let h = ToeplitzHash::sample(&mut rng, 32, 6);
                h.hash(&a) == h.hash(&b)
            })
            .count();
        let rate = collisions as f64 / trials as f64;
        let ideal = 1.0 / 64.0;
        assert!(
            (rate - ideal).abs() < 0.006,
            "collision rate {rate} vs {ideal}"
        );
    }

    #[test]
    fn digests_are_balanced() {
        let mut rng = StdRng::seed_from_u64(4);
        let h = ToeplitzHash::sample(&mut rng, 128, 32);
        let mut ones = 0usize;
        let trials = 500;
        for _ in 0..trials {
            ones += h.hash(&random_bits(&mut rng, 128)).count_ones();
        }
        let frac = ones as f64 / (trials * 32) as f64;
        assert!((frac - 0.5).abs() < 0.02, "ones fraction {frac}");
    }

    #[test]
    fn end_to_end_key_hardening() {
        // reproduce() then hash(): the full Gen/Rep + privacy
        // amplification pipeline, stable under correctable noise.
        let mut rng = StdRng::seed_from_u64(5);
        let fx = FuzzyExtractor::new(3);
        let response = random_bits(&mut rng, 3 * 96);
        let (raw_key, helper) = fx.generate(&mut rng, &response);
        let hash = ToeplitzHash::sample(&mut rng, raw_key.len(), 64);
        let key = hash.hash(&raw_key);

        let mut noisy = response.clone();
        noisy.set(0, !noisy.get(0).unwrap()); // one correctable flip
        let raw_again = fx.reproduce(&noisy, &helper).unwrap();
        assert_eq!(hash.hash(&raw_again), key);
        assert_eq!(key.len(), 64);
    }

    #[test]
    #[should_panic(expected = "input + output - 1")]
    fn wrong_seed_length_panics() {
        let _ = ToeplitzHash::new(BitVec::zeros(10), 8, 4);
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn wrong_input_length_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let h = ToeplitzHash::sample(&mut rng, 16, 8);
        let _ = h.hash(&BitVec::zeros(15));
    }
}
