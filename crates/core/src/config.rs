//! Configuration vectors: the collection of MUX selection bits.
//!
//! A ring with `n` delay units is configured by an `n`-bit vector; bit
//! `i = 1` routes stage `i` through its inverter, `0` bypasses it. A ring
//! only free-runs as an oscillator when an **odd** number of inverting
//! stages is selected; [`ParityPolicy`] lets callers choose between the
//! paper's idealized formulation (parity ignored — appropriate when each
//! "inverter" is really a whole RO, as in the public-dataset experiments)
//! and hardware-faithful odd-only selection.

use std::fmt;

use ropuf_num::bits::BitVec;

/// How selection algorithms treat the odd-inverter-count oscillation
/// constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParityPolicy {
    /// Any number of selected stages is acceptable (the paper's
    /// §III.D formulation; also correct when stages are whole ROs).
    #[default]
    Ignore,
    /// The selected count must be odd so the configured ring oscillates.
    ForceOdd,
}

impl ParityPolicy {
    /// Whether a selection of `count` stages satisfies this policy.
    ///
    /// # Examples
    ///
    /// ```
    /// use ropuf_core::config::ParityPolicy;
    /// assert!(ParityPolicy::Ignore.admits(4));
    /// assert!(!ParityPolicy::ForceOdd.admits(4));
    /// assert!(ParityPolicy::ForceOdd.admits(5));
    /// ```
    pub fn admits(self, count: usize) -> bool {
        match self {
            ParityPolicy::Ignore => true,
            ParityPolicy::ForceOdd => count % 2 == 1,
        }
    }
}

/// An immutable configuration vector over `n` delay units.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ConfigVector {
    bits: BitVec,
}

impl ConfigVector {
    /// Builds a configuration from per-stage selection flags.
    ///
    /// # Panics
    ///
    /// Panics if `flags` is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use ropuf_core::ConfigVector;
    /// let c = ConfigVector::from_flags(&[true, false, true]);
    /// assert_eq!(c.selected_count(), 2);
    /// assert_eq!(c.to_string(), "101");
    /// ```
    pub fn from_flags(flags: &[bool]) -> Self {
        assert!(
            !flags.is_empty(),
            "a configuration needs at least one stage"
        );
        Self {
            bits: flags.iter().copied().collect(),
        }
    }

    /// Builds a configuration selecting exactly the stages in `selected`
    /// out of `n` stages.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or any index is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use ropuf_core::ConfigVector;
    /// let c = ConfigVector::from_selected(5, &[0, 3]);
    /// assert_eq!(c.to_string(), "10010");
    /// ```
    pub fn from_selected(n: usize, selected: &[usize]) -> Self {
        assert!(n > 0, "a configuration needs at least one stage");
        let mut bits = BitVec::zeros(n);
        for &i in selected {
            assert!(i < n, "stage index {i} out of range {n}");
            bits.set(i, true);
        }
        Self { bits }
    }

    /// Configuration with every stage selected — the traditional RO.
    pub fn all_selected(n: usize) -> Self {
        Self::from_flags(&vec![true; n])
    }

    /// Configuration with every stage selected except `skip` — the
    /// leave-one-out calibration pattern.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `skip >= n`.
    pub fn all_but(n: usize, skip: usize) -> Self {
        assert!(skip < n, "skip index {skip} out of range {n}");
        let mut flags = vec![true; n];
        flags[skip] = false;
        Self::from_flags(&flags)
    }

    /// Number of stages (selected or not).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Always false — configurations are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether stage `i` is selected.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn is_selected(&self, i: usize) -> bool {
        self.bits
            .get(i)
            .unwrap_or_else(|| panic!("stage index {i} out of range {}", self.len()))
    }

    /// Number of selected stages.
    pub fn selected_count(&self) -> usize {
        self.bits.count_ones()
    }

    /// Whether the configured ring has an odd number of inverting stages
    /// and therefore oscillates.
    pub fn oscillates(&self) -> bool {
        self.selected_count() % 2 == 1
    }

    /// Indices of the selected stages, ascending.
    pub fn selected_indices(&self) -> Vec<usize> {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.then_some(i))
            .collect()
    }

    /// Iterator over the per-stage selection flags.
    pub fn iter(&self) -> ropuf_num::bits::Iter<'_> {
        self.bits.iter()
    }

    /// The underlying bit vector (for Hamming-distance analyses such as
    /// the paper's Tables III/IV).
    pub fn as_bits(&self) -> &BitVec {
        &self.bits
    }

    /// Hamming distance to another configuration of the same length, or
    /// `None` if lengths differ.
    pub fn hamming_distance(&self, other: &Self) -> Option<usize> {
        self.bits.hamming_distance(&other.bits)
    }

    /// Concatenation of two configurations (used for Case-2's 30-bit
    /// combined top‖bottom vectors in Table IV).
    pub fn concat(&self, other: &Self) -> Self {
        let mut bits = self.bits.clone();
        bits.extend_bits(&other.bits);
        Self { bits }
    }
}

impl fmt::Display for ConfigVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.bits.to_binary_string())
    }
}

impl fmt::Debug for ConfigVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ConfigVector({})", self.bits.to_binary_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flags_and_selection_agree() {
        let a = ConfigVector::from_flags(&[true, false, true, true]);
        let b = ConfigVector::from_selected(4, &[0, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.selected_indices(), vec![0, 2, 3]);
        assert_eq!(a.selected_count(), 3);
        assert!(a.oscillates());
    }

    #[test]
    fn even_count_does_not_oscillate() {
        let c = ConfigVector::from_selected(4, &[1, 2]);
        assert!(!c.oscillates());
    }

    #[test]
    fn all_selected_and_all_but() {
        let full = ConfigVector::all_selected(5);
        assert_eq!(full.selected_count(), 5);
        let loo = ConfigVector::all_but(5, 2);
        assert_eq!(loo.selected_count(), 4);
        assert!(!loo.is_selected(2));
        assert_eq!(full.hamming_distance(&loo), Some(1));
    }

    #[test]
    fn paper_three_stage_patterns() {
        // §III.B: "110" skips the last inverter, "101" the middle, "011"
        // the first.
        assert_eq!(ConfigVector::all_but(3, 2).to_string(), "110");
        assert_eq!(ConfigVector::all_but(3, 1).to_string(), "101");
        assert_eq!(ConfigVector::all_but(3, 0).to_string(), "011");
    }

    #[test]
    fn concat_produces_combined_vector() {
        let top = ConfigVector::from_flags(&[true, false]);
        let bottom = ConfigVector::from_flags(&[false, true]);
        let both = top.concat(&bottom);
        assert_eq!(both.to_string(), "1001");
        assert_eq!(both.len(), 4);
    }

    #[test]
    fn parity_policy_admits() {
        assert!(ParityPolicy::Ignore.admits(0));
        assert!(ParityPolicy::Ignore.admits(2));
        assert!(!ParityPolicy::ForceOdd.admits(0));
        assert!(ParityPolicy::ForceOdd.admits(1));
        assert!(!ParityPolicy::ForceOdd.admits(2));
        assert!(ParityPolicy::ForceOdd.admits(7));
    }

    #[test]
    fn display_debug() {
        let c = ConfigVector::from_flags(&[true, true, false]);
        assert_eq!(c.to_string(), "110");
        assert_eq!(format!("{c:?}"), "ConfigVector(110)");
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_flags_panic() {
        let _ = ConfigVector::from_flags(&[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_selection_panics() {
        let _ = ConfigVector::from_selected(3, &[3]);
    }
}
