//! §III.B — recovering per-unit delay differences from ring measurements.
//!
//! A single delay unit switches too fast to measure directly, so the
//! paper *computes* each unit's `ddiff_i = d_i + d1_i − d0_i` from a
//! handful of whole-ring path-delay measurements:
//!
//! * [`solve_three_stage`] — the paper's worked 3-stage example: measure
//!   configurations `110`, `101`, `011` (delays X, Y, Z) and solve
//!   `ddiff_1 = (X+Y−Z)/2` etc. As documented there, this folds half the
//!   total bypass delay `B = Σ d0_j` into every estimate; the *bias is
//!   common to all stages* and cancels in the Δd comparisons selection
//!   actually uses.
//! * [`calibrate`] — the generalized, unbiased scheme this crate uses by
//!   default: measure the all-selected ring (`D_all`) and each
//!   leave-one-out ring (`D_i`); then `ddiff_i = D_all − D_i` exactly,
//!   with `n + 2` probe measurements also yielding the bypass total `B`.
//!
//! Measurements go through a [`DelayProbe`] (pulse propagation), which
//! works for any configuration — including even-inverter-count ones that
//! would not free-run as oscillators. See `DESIGN.md` for why this is the
//! faithful model of post-silicon test-mode measurement.

use rand::Rng;
use ropuf_silicon::{BatchProbe, DelayProbe, Environment, RingSweep, Technology};
use ropuf_telemetry as telemetry;

use crate::config::ConfigVector;
use crate::ro::ConfigurableRo;

/// Result of calibrating one ring.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    ddiff_ps: Vec<f64>,
    all_selected_ps: f64,
    bypass_ps: f64,
}

impl Calibration {
    /// Assembles a calibration from already-measured parts. Used by the
    /// fault-tolerant path in [`crate::robust`], which performs the same
    /// `n + 2` measurements as [`calibrate`] but screens each one.
    pub(crate) fn from_parts(ddiff_ps: Vec<f64>, all_selected_ps: f64, bypass_ps: f64) -> Self {
        Self {
            ddiff_ps,
            all_selected_ps,
            bypass_ps,
        }
    }

    /// The estimated per-stage delay differences `ddiff_i`, picoseconds.
    pub fn ddiffs_ps(&self) -> &[f64] {
        &self.ddiff_ps
    }

    /// Measured delay of the all-selected ring, picoseconds.
    pub fn all_selected_ps(&self) -> f64 {
        self.all_selected_ps
    }

    /// Measured delay of the all-bypassed ring (`B = Σ d0_i`),
    /// picoseconds.
    pub fn bypass_ps(&self) -> f64 {
        self.bypass_ps
    }

    /// Number of stages calibrated.
    pub fn stages(&self) -> usize {
        self.ddiff_ps.len()
    }

    /// Predicted ring delay under an arbitrary configuration, from the
    /// calibrated model `B + Σ ddiff_i x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `config.len() != self.stages()`.
    pub fn predicted_delay_ps(&self, config: &ConfigVector) -> f64 {
        assert_eq!(config.len(), self.stages(), "configuration length mismatch");
        self.bypass_ps
            + config
                .selected_indices()
                .iter()
                .map(|&i| self.ddiff_ps[i])
                .sum::<f64>()
    }
}

/// Calibrates a ring with the generalized leave-one-out scheme:
/// `n + 2` probe measurements (all-selected, all-bypassed, and each
/// single-stage-bypassed ring), yielding unbiased `ddiff_i = D_all − D_i`
/// estimates and the bypass total.
///
/// Internally the `n + 2` configurations are served by the batched
/// [`BatchProbe`] kernel: per-stage delay contributions are scaled once
/// per ring and reused by every configuration, instead of re-deriving
/// them in `n + 2` independent whole-ring walks. The result is
/// bit-identical to [`calibrate_per_config`] — same noise-draw order,
/// same floating-point folds — just cheaper; each call bumps the
/// `measure.batched` telemetry counter by `n + 2`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use ropuf_core::calibrate::calibrate;
/// use ropuf_core::ro::ConfigurableRo;
/// use ropuf_silicon::board::BoardId;
/// use ropuf_silicon::{DelayProbe, Environment, SiliconSim};
///
/// let sim = SiliconSim::default_spartan();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let board = sim.grow_board_with_id(&mut rng, BoardId(0), 5, 5);
/// let ro = ConfigurableRo::from_range(&board, 0..5);
/// let cal = calibrate(
///     &mut rng,
///     &ro,
///     &DelayProbe::noiseless(),
///     Environment::nominal(),
///     sim.technology(),
/// );
/// // Noise-free calibration recovers the exact ddiffs.
/// let truth = ro.true_ddiffs_ps(Environment::nominal(), sim.technology());
/// for (est, t) in cal.ddiffs_ps().iter().zip(&truth) {
///     assert!((est - t).abs() < 1e-9);
/// }
/// ```
pub fn calibrate<R: Rng + ?Sized>(
    rng: &mut R,
    ro: &ConfigurableRo<'_>,
    probe: &DelayProbe,
    env: Environment,
    tech: &Technology,
) -> Calibration {
    let n = ro.len();
    let stages = ro.stage_delays(env, tech);
    let batch = BatchProbe::new(probe, &stages).measure_configs(rng);
    telemetry::counter("measure.batched", (n + 2) as u64);
    let ddiff_ps: Vec<f64> = batch
        .leave_one_out_ps
        .iter()
        .map(|&d_i| batch.all_selected_ps - d_i)
        .collect();
    Calibration {
        ddiff_ps,
        all_selected_ps: batch.all_selected_ps,
        bypass_ps: batch.bypass_ps,
    }
}

/// [`calibrate`] against an arena-backed ring view: the same `n + 2`
/// leave-one-out measurements and `ddiff_i = D_all − D_i` recovery, with
/// the configuration delays served by a [`ropuf_silicon::MeasureArena`]
/// sweep shared across a whole block of rings instead of a per-ring
/// [`ropuf_silicon::StageDelays`] cache.
///
/// Bit-identical to [`calibrate`] (and therefore to
/// [`calibrate_per_config`]): the sweep folds stage contributions in the
/// same order and [`RingSweep::measure`] draws noise in the same
/// per-measurement order. Bumps `measure.batched` by `n + 2`, like
/// [`calibrate`].
pub(crate) fn calibrate_from_sweep<R: Rng + ?Sized>(
    rng: &mut R,
    ring: &RingSweep<'_>,
    probe: &DelayProbe,
) -> Calibration {
    let n = ring.stages();
    let batch = ring.measure(probe, rng);
    telemetry::counter("measure.batched", (n + 2) as u64);
    let ddiff_ps: Vec<f64> = batch
        .leave_one_out_ps
        .iter()
        .map(|&d_i| batch.all_selected_ps - d_i)
        .collect();
    Calibration {
        ddiff_ps,
        all_selected_ps: batch.all_selected_ps,
        bypass_ps: batch.bypass_ps,
    }
}

/// Reference implementation of [`calibrate`] that performs `n + 2`
/// independent whole-ring walks — one O(n) delay sum per configuration —
/// instead of the batched per-stage cache.
///
/// The batched path is bit-identical to this one by construction (same
/// noise-draw order, same left-to-right delay folds); the equivalence is
/// pinned by unit and property tests. This path is kept as the oracle for
/// those tests and for the `repro fleet` batched-vs-naive breakdown, and
/// feeds the `measure.fallback` telemetry counter.
pub fn calibrate_per_config<R: Rng + ?Sized>(
    rng: &mut R,
    ro: &ConfigurableRo<'_>,
    probe: &DelayProbe,
    env: Environment,
    tech: &Technology,
) -> Calibration {
    let n = ro.len();
    telemetry::counter("measure.fallback", (n + 2) as u64);
    let measure = |rng: &mut R, config: &ConfigVector| {
        probe.measure_ps(rng, ro.ring_delay_ps(config, env, tech))
    };
    let all_selected_ps = measure(rng, &ConfigVector::all_selected(n));
    let bypass_ps = measure(rng, &ConfigVector::from_flags(&vec![false; n]));
    let ddiff_ps: Vec<f64> = (0..n)
        .map(|i| all_selected_ps - measure(rng, &ConfigVector::all_but(n, i)))
        .collect();
    Calibration {
        ddiff_ps,
        all_selected_ps,
        bypass_ps,
    }
}

/// The paper's 3-stage solve: given measured ring delays `x` (config
/// `110`), `y` (`101`), and `z` (`011`), returns
/// `[(x+y−z)/2, (x+z−y)/2, (y+z−x)/2]`.
///
/// Each estimate carries a `+B/2` bias (half the total bypass delay); the
/// bias is identical across stages and across identically structured
/// rings, so it cancels in the `Δd_i = α_i − β_i` differences the
/// selection algorithms consume.
///
/// # Examples
///
/// ```
/// use ropuf_core::calibrate::solve_three_stage;
/// // Idealized zero-bypass ring with per-stage ddiffs 3, 4, 5:
/// // X = 3+4 = 7, Y = 3+5 = 8, Z = 4+5 = 9.
/// let dd = solve_three_stage(7.0, 8.0, 9.0);
/// assert_eq!(dd, [3.0, 4.0, 5.0]);
/// ```
pub fn solve_three_stage(x: f64, y: f64, z: f64) -> [f64; 3] {
    [(x + y - z) / 2.0, (x + z - y) / 2.0, (y + z - x) / 2.0]
}

/// Measures the three two-selected configurations of a 3-stage ring and
/// applies [`solve_three_stage`] — the paper's procedure end-to-end.
///
/// # Panics
///
/// Panics if the ring does not have exactly 3 stages.
pub fn calibrate_three_stage<R: Rng + ?Sized>(
    rng: &mut R,
    ro: &ConfigurableRo<'_>,
    probe: &DelayProbe,
    env: Environment,
    tech: &Technology,
) -> [f64; 3] {
    assert_eq!(
        ro.len(),
        3,
        "three-stage calibration needs exactly 3 stages"
    );
    telemetry::counter("measure.fallback", 3);
    let measure = |rng: &mut R, skip: usize| {
        probe.measure_ps(
            rng,
            ro.ring_delay_ps(&ConfigVector::all_but(3, skip), env, tech),
        )
    };
    let x = measure(rng, 2); // 110
    let y = measure(rng, 1); // 101
    let z = measure(rng, 0); // 011
    solve_three_stage(x, y, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_silicon::board::BoardId;
    use ropuf_silicon::{Board, SiliconSim};

    fn grow(units: usize) -> (Board, Technology) {
        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(7);
        (
            sim.grow_board_with_id(&mut rng, BoardId(0), units, units.min(16)),
            *sim.technology(),
        )
    }

    #[test]
    fn noiseless_calibration_is_exact() {
        let (board, tech) = grow(9);
        let ro = ConfigurableRo::from_range(&board, 0..9);
        let mut rng = StdRng::seed_from_u64(0);
        let env = Environment::nominal();
        let cal = calibrate(&mut rng, &ro, &DelayProbe::noiseless(), env, &tech);
        let truth = ro.true_ddiffs_ps(env, &tech);
        for (e, t) in cal.ddiffs_ps().iter().zip(&truth) {
            assert!((e - t).abs() < 1e-9, "{e} vs {t}");
        }
        assert!((cal.bypass_ps() - ro.bypass_delay_ps(env, &tech)).abs() < 1e-9);
    }

    #[test]
    fn predicted_delay_matches_true_delay_noiselessly() {
        let (board, tech) = grow(7);
        let ro = ConfigurableRo::from_range(&board, 0..7);
        let mut rng = StdRng::seed_from_u64(1);
        let env = Environment::nominal();
        let cal = calibrate(&mut rng, &ro, &DelayProbe::noiseless(), env, &tech);
        let config = ConfigVector::from_selected(7, &[0, 3, 6]);
        let predicted = cal.predicted_delay_ps(&config);
        let truth = ro.ring_delay_ps(&config, env, &tech);
        assert!((predicted - truth).abs() < 1e-9);
    }

    #[test]
    fn noisy_calibration_error_scales_with_probe_noise() {
        let (board, tech) = grow(5);
        let ro = ConfigurableRo::from_range(&board, 0..5);
        let env = Environment::nominal();
        let truth = ro.true_ddiffs_ps(env, &tech);
        let rms = |sigma: f64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let probe = DelayProbe::new(sigma, 1);
            let mut sq = 0.0;
            let rounds = 200;
            for _ in 0..rounds {
                let cal = calibrate(&mut rng, &ro, &probe, env, &tech);
                for (e, t) in cal.ddiffs_ps().iter().zip(&truth) {
                    sq += (e - t) * (e - t);
                }
            }
            (sq / (rounds * 5) as f64).sqrt()
        };
        let low = rms(0.1, 3);
        let high = rms(1.0, 3);
        // RMS error should scale roughly linearly with probe sigma
        // (each ddiff is a difference of two readings: σ√2).
        assert!(high > 5.0 * low, "low {low} high {high}");
        assert!((low / (0.1 * 2f64.sqrt()) - 1.0).abs() < 0.25, "low {low}");
    }

    #[test]
    fn repeats_sharpen_estimates() {
        let (board, tech) = grow(5);
        let ro = ConfigurableRo::from_range(&board, 0..5);
        let env = Environment::nominal();
        let truth = ro.true_ddiffs_ps(env, &tech);
        let err = |repeats: usize| {
            let mut rng = StdRng::seed_from_u64(5);
            let probe = DelayProbe::new(1.0, repeats);
            let mut sq = 0.0;
            for _ in 0..100 {
                let cal = calibrate(&mut rng, &ro, &probe, env, &tech);
                for (e, t) in cal.ddiffs_ps().iter().zip(&truth) {
                    sq += (e - t) * (e - t);
                }
            }
            sq
        };
        assert!(err(16) < err(1) / 4.0);
    }

    #[test]
    fn batched_calibration_matches_per_config_bit_for_bit() {
        let (board, tech) = grow(8);
        for (stages, env) in [
            (1, Environment::nominal()),
            (4, Environment::new(0.98, 65.0)),
            (8, Environment::nominal()),
        ] {
            let ro = ConfigurableRo::from_range(&board, 0..stages);
            let probe = DelayProbe::new(0.25, 4);
            let mut rng_a = StdRng::seed_from_u64(42);
            let mut rng_b = StdRng::seed_from_u64(42);
            let batched = calibrate(&mut rng_a, &ro, &probe, env, &tech);
            let naive = calibrate_per_config(&mut rng_b, &ro, &probe, env, &tech);
            assert_eq!(
                batched.all_selected_ps().to_bits(),
                naive.all_selected_ps().to_bits()
            );
            assert_eq!(batched.bypass_ps().to_bits(), naive.bypass_ps().to_bits());
            for (b, n) in batched.ddiffs_ps().iter().zip(naive.ddiffs_ps()) {
                assert_eq!(b.to_bits(), n.to_bits(), "stages={stages}");
            }
            // And the RNGs stayed in lockstep: next draws agree.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        }
    }

    #[test]
    fn three_stage_solver_exact_on_synthetic_numbers() {
        let dd = solve_three_stage(10.0, 12.0, 14.0);
        assert_eq!(dd, [4.0, 6.0, 8.0]);
    }

    #[test]
    fn three_stage_bias_is_half_bypass_and_common() {
        let (board, tech) = grow(3);
        let ro = ConfigurableRo::from_range(&board, 0..3);
        let mut rng = StdRng::seed_from_u64(2);
        let env = Environment::nominal();
        let est = calibrate_three_stage(&mut rng, &ro, &DelayProbe::noiseless(), env, &tech);
        let truth = ro.true_ddiffs_ps(env, &tech);
        let bias = ro.bypass_delay_ps(env, &tech) / 2.0;
        for (e, t) in est.iter().zip(&truth) {
            assert!(
                (e - t - bias).abs() < 1e-9,
                "est {e}, true {t}, bias {bias}"
            );
        }
    }

    #[test]
    fn three_stage_bias_cancels_in_deltas() {
        // The Δd the selection uses: (est_top − est_bottom) should match
        // truth to within the *difference* of the two rings' bypass
        // biases, which is far smaller than the bias itself.
        let (board, tech) = grow(6);
        let top = ConfigurableRo::from_range(&board, 0..3);
        let bottom = ConfigurableRo::from_range(&board, 3..6);
        let mut rng = StdRng::seed_from_u64(3);
        let env = Environment::nominal();
        let probe = DelayProbe::noiseless();
        let est_t = calibrate_three_stage(&mut rng, &top, &probe, env, &tech);
        let est_b = calibrate_three_stage(&mut rng, &bottom, &probe, env, &tech);
        let true_t = top.true_ddiffs_ps(env, &tech);
        let true_b = bottom.true_ddiffs_ps(env, &tech);
        let bias_gap = (top.bypass_delay_ps(env, &tech) - bottom.bypass_delay_ps(env, &tech)) / 2.0;
        for i in 0..3 {
            let est_delta = est_t[i] - est_b[i];
            let true_delta = true_t[i] - true_b[i];
            assert!((est_delta - true_delta - bias_gap).abs() < 1e-9);
        }
        // And the residual bias gap is tiny relative to the bias itself.
        assert!(bias_gap.abs() < top.bypass_delay_ps(env, &tech) / 20.0);
    }

    #[test]
    #[should_panic(expected = "exactly 3 stages")]
    fn three_stage_rejects_other_sizes() {
        let (board, tech) = grow(4);
        let ro = ConfigurableRo::from_range(&board, 0..4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = calibrate_three_stage(
            &mut rng,
            &ro,
            &DelayProbe::noiseless(),
            Environment::nominal(),
            &tech,
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn predicted_delay_checks_length() {
        let (board, tech) = grow(4);
        let ro = ConfigurableRo::from_range(&board, 0..4);
        let mut rng = StdRng::seed_from_u64(0);
        let cal = calibrate(
            &mut rng,
            &ro,
            &DelayProbe::noiseless(),
            Environment::nominal(),
            &tech,
        );
        let _ = cal.predicted_delay_ps(&ConfigVector::all_selected(3));
    }
}
