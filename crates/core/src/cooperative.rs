//! The temperature-aware cooperative RO PUF baseline (Yin & Qu,
//! HOST 2009 — the paper's reference \[2\]).
//!
//! §II summarizes it: by characterizing every RO across the temperature
//! range at enrollment and only pairing ROs whose speed ordering is
//! consistent over the whole range, it reaches much higher hardware
//! utilization than 1-out-of-8 (the paper quotes 80 % higher) — at the
//! cost of a temperature sensor and a multi-corner enrollment.
//!
//! This module implements the scheme in its essential form:
//! [`CooperativePuf::enroll`] measures every ring at each supplied
//! operating corner, then greedily matches rings into disjoint pairs
//! whose delay ordering holds at *every* corner with at least
//! `min_margin_ps` of slack, preferring the most robust pairings. Rings
//! that cannot be consistently paired are left unused — the utilization
//! number the comparison is about.

use rand::Rng;
use ropuf_num::bits::BitVec;
use ropuf_silicon::{Board, DelayProbe, Environment, Technology};

use crate::config::ConfigVector;
use crate::ro::ConfigurableRo;

/// A cooperative RO PUF floorplan: a pool of equally sized rings that
/// enrollment will pair up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CooperativePuf {
    rings: Vec<Vec<usize>>,
}

impl CooperativePuf {
    /// Builds the pool from explicit ring unit-index lists.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two rings are given or they differ in size.
    pub fn new(rings: Vec<Vec<usize>>) -> Self {
        assert!(rings.len() >= 2, "pairing needs at least two rings");
        let stages = rings[0].len();
        assert!(stages > 0, "rings need at least one stage");
        assert!(
            rings.iter().all(|r| r.len() == stages),
            "all rings must be equally sized"
        );
        Self { rings }
    }

    /// Tiles `total_units` into consecutive `stages`-unit rings.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two rings fit.
    pub fn tiled(total_units: usize, stages: usize) -> Self {
        assert!(stages > 0, "rings need at least one stage");
        let count = total_units / stages;
        assert!(
            count >= 2,
            "{total_units} units cannot host two {stages}-stage rings"
        );
        Self::new(
            (0..count)
                .map(|r| (r * stages..(r + 1) * stages).collect())
                .collect(),
        )
    }

    /// Number of rings in the pool.
    pub fn ring_count(&self) -> usize {
        self.rings.len()
    }

    /// Enrolls: measures every ring at every corner in `corners`, then
    /// pairs rings whose ordering is corner-consistent with at least
    /// `min_margin_ps` of slack everywhere, most-robust pairs first.
    ///
    /// # Panics
    ///
    /// Panics if `corners` is empty or `min_margin_ps` is negative/not
    /// finite.
    pub fn enroll<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &Board,
        tech: &Technology,
        corners: &[Environment],
        probe: &DelayProbe,
        min_margin_ps: f64,
    ) -> CooperativeEnrollment {
        assert!(!corners.is_empty(), "enrollment needs at least one corner");
        assert!(
            min_margin_ps.is_finite() && min_margin_ps >= 0.0,
            "margin must be finite and non-negative"
        );
        let stages = self.rings[0].len();
        let config = ConfigVector::all_selected(stages);
        // delays[r][c] = ring r's measured delay at corner c.
        let delays: Vec<Vec<f64>> = self
            .rings
            .iter()
            .map(|units| {
                let ro = ConfigurableRo::try_new(board, units.clone())
                    .expect("cooperative rings fit the board");
                corners
                    .iter()
                    .map(|&env| probe.measure_ps(rng, ro.ring_delay_ps(&config, env, tech)))
                    .collect()
            })
            .collect();

        // Candidate pairs with corner-consistent ordering; robustness =
        // the worst-corner separation.
        let mut candidates: Vec<(usize, usize, f64, bool)> = Vec::new();
        for a in 0..self.rings.len() {
            for b in a + 1..self.rings.len() {
                let diffs: Vec<f64> = delays[a]
                    .iter()
                    .zip(&delays[b])
                    .map(|(da, db)| da - db)
                    .collect();
                let all_pos = diffs.iter().all(|&d| d >= min_margin_ps);
                let all_neg = diffs.iter().all(|&d| d <= -min_margin_ps);
                if all_pos || all_neg {
                    let worst = diffs.iter().map(|d| d.abs()).fold(f64::INFINITY, f64::min);
                    candidates.push((a, b, worst, all_pos));
                }
            }
        }
        candidates.sort_by(|x, y| y.2.total_cmp(&x.2));

        // Greedy disjoint matching, most robust first.
        let mut used = vec![false; self.rings.len()];
        let mut pairs = Vec::new();
        for (a, b, worst, a_slower) in candidates {
            if !used[a] && !used[b] {
                used[a] = true;
                used[b] = true;
                pairs.push(CooperativePair {
                    ring_a: self.rings[a].clone(),
                    ring_b: self.rings[b].clone(),
                    expected_bit: a_slower,
                    worst_margin_ps: worst,
                });
            }
        }
        CooperativeEnrollment {
            pairs,
            ring_pool: self.rings.len(),
            stages,
        }
    }
}

/// One enrolled cooperative pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CooperativePair {
    ring_a: Vec<usize>,
    ring_b: Vec<usize>,
    expected_bit: bool,
    worst_margin_ps: f64,
}

impl CooperativePair {
    /// Bit recorded at enrollment (`true` = ring A slower at every
    /// corner).
    pub fn expected_bit(&self) -> bool {
        self.expected_bit
    }

    /// The pair's delay separation at its worst enrollment corner.
    pub fn worst_margin_ps(&self) -> f64 {
        self.worst_margin_ps
    }
}

/// An enrolled cooperative PUF.
#[derive(Debug, Clone, PartialEq)]
pub struct CooperativeEnrollment {
    pairs: Vec<CooperativePair>,
    ring_pool: usize,
    stages: usize,
}

impl CooperativeEnrollment {
    /// The enrolled pairs, most robust first.
    pub fn pairs(&self) -> &[CooperativePair] {
        &self.pairs
    }

    /// Number of bits produced.
    pub fn bit_count(&self) -> usize {
        self.pairs.len()
    }

    /// Hardware utilization: rings actually producing bits over rings
    /// provisioned (the traditional RO PUF's baseline is 1.0; 1-out-of-8
    /// sits at 0.25).
    pub fn utilization(&self) -> f64 {
        2.0 * self.pairs.len() as f64 / self.ring_pool as f64
    }

    /// Bits recorded at enrollment.
    pub fn expected_bits(&self) -> BitVec {
        self.pairs
            .iter()
            .map(CooperativePair::expected_bit)
            .collect()
    }

    /// Generates a response at `env`.
    pub fn respond<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        board: &Board,
        tech: &Technology,
        env: Environment,
        probe: &DelayProbe,
    ) -> BitVec {
        let config = ConfigVector::all_selected(self.stages);
        self.pairs
            .iter()
            .map(|p| {
                let ring = |units: &Vec<usize>| {
                    ConfigurableRo::try_new(board, units.clone())
                        .expect("cooperative rings fit the board")
                };
                let da = probe.measure_ps(rng, ring(&p.ring_a).ring_delay_ps(&config, env, tech));
                let db = probe.measure_ps(rng, ring(&p.ring_b).ring_delay_ps(&config, env, tech));
                da > db
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ropuf_silicon::board::BoardId;
    use ropuf_silicon::SiliconSim;

    fn setup() -> (Board, Technology, StdRng) {
        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(41);
        let board = sim.grow_board_with_id(&mut rng, BoardId(0), 64 * 5, 20);
        (board, *sim.technology(), rng)
    }

    fn enroll(min_margin: f64) -> (CooperativeEnrollment, Board, Technology, StdRng) {
        let (board, tech, mut rng) = setup();
        let puf = CooperativePuf::tiled(board.len(), 5);
        let e = puf.enroll(
            &mut rng,
            &board,
            &tech,
            &Environment::temperature_sweep(1.20),
            &DelayProbe::noiseless(),
            min_margin,
        );
        (e, board, tech, rng)
    }

    #[test]
    fn utilization_beats_one_of_eight() {
        let (e, _, _, _) = enroll(0.5);
        // Reference [2] claims ~80 % above 1-out-of-8's 25 %; anything
        // comfortably above 0.25 demonstrates the point.
        assert!(e.utilization() > 0.5, "utilization {}", e.utilization());
        assert!(e.bit_count() >= 16);
    }

    #[test]
    fn pairs_are_disjoint_and_sorted_by_robustness() {
        let (e, _, _, _) = enroll(0.5);
        let mut seen = std::collections::HashSet::new();
        let mut prev = f64::INFINITY;
        for p in e.pairs() {
            for u in p.ring_a.iter().chain(&p.ring_b) {
                assert!(seen.insert(*u), "unit {u} reused");
            }
            assert!(p.worst_margin_ps() <= prev);
            prev = p.worst_margin_ps();
        }
    }

    #[test]
    fn responses_are_corner_stable() {
        let (e, board, tech, mut rng) = enroll(1.0);
        let probe = DelayProbe::new(0.25, 1);
        for env in Environment::temperature_sweep(1.20) {
            let r = e.respond(&mut rng, &board, &tech, env, &probe);
            assert_eq!(r, e.expected_bits(), "flips at {env}");
        }
    }

    #[test]
    fn higher_margin_requirement_costs_bits() {
        let (loose, _, _, _) = enroll(0.0);
        let (strict, _, _, _) = enroll(5.0);
        assert!(strict.bit_count() <= loose.bit_count());
    }

    #[test]
    fn single_corner_enrollment_pairs_everything() {
        // With one corner and zero margin, ordering is always
        // consistent: utilization 1 (up to an odd leftover ring).
        let (board, tech, mut rng) = setup();
        let puf = CooperativePuf::tiled(board.len(), 5);
        let e = puf.enroll(
            &mut rng,
            &board,
            &tech,
            &[Environment::nominal()],
            &DelayProbe::noiseless(),
            0.0,
        );
        assert!(e.utilization() > 0.96, "utilization {}", e.utilization());
    }

    #[test]
    #[should_panic(expected = "at least one corner")]
    fn empty_corners_panic() {
        let (board, tech, mut rng) = setup();
        let puf = CooperativePuf::tiled(board.len(), 5);
        let _ = puf.enroll(&mut rng, &board, &tech, &[], &DelayProbe::noiseless(), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot host two")]
    fn tiny_pool_panics() {
        let _ = CooperativePuf::tiled(5, 5);
    }
}
