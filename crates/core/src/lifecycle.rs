//! Typestate enrollment lifecycle: `Device<Started> → Device<Enrolled>`.
//!
//! The NXP/Nitrokey PUF peripheral exposes its key store as a strict
//! state machine: a started-but-unenrolled PUF accepts only
//! `GenerateKey`/`SetKey`, both of which output an opaque *Key Code*,
//! and only an enrolled PUF can run `GetKey` to turn a Key Code back
//! into key material. This module gives the configurable RO PUF the
//! same shape — the free-floating `enroll*`/`respond*` functions stay
//! available for research workloads, but deployments drive a
//! [`Device`], where calling an operation in the wrong state is a
//! *compile* error rather than a runtime panic:
//!
//! ```compile_fail
//! use ropuf_core::lifecycle::{Device, KeyCode, Started};
//! use ropuf_core::robust::FaultPlan;
//!
//! fn broken(device: &Device<'_, Started>, code: &KeyCode) {
//!     // `get_key` exists only on Device<'_, Enrolled>.
//!     let _ = device.get_key(7, 1, &FaultPlan::scaled(0.0), code);
//! }
//! ```
//!
//! The happy path, end to end:
//!
//! ```
//! use rand::SeedableRng;
//! use ropuf_core::lifecycle::Device;
//! use ropuf_core::puf::{ConfigurableRoPuf, EnrollOptions};
//! use ropuf_core::robust::FaultPlan;
//! use ropuf_silicon::{Environment, SiliconSim};
//!
//! let mut sim = SiliconSim::default_spartan();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let board = sim.grow_board(&mut rng, 70, 10);
//! let device = Device::start(
//!     &board,
//!     sim.technology(),
//!     Environment::nominal(),
//!     ConfigurableRoPuf::tiled_interleaved(70, 7),
//!     EnrollOptions::default(),
//! );
//! let plan = FaultPlan::scaled(0.0);
//! let (device, code) = device.generate_key(42, 1, &plan)?;
//! let key = device.get_key(7, 1, &plan, &code)?;
//! assert_eq!(key.len(), code.key_bits());
//! # Ok::<(), ropuf_core::error::Error>(())
//! ```
//!
//! A [`KeyCode`] holds only public helper data (the code-offset sketch
//! of the key XORed onto the enrollment response): storing or shipping
//! it reveals nothing about the key without the physical board, so the
//! server persists Key Codes next to enrollments and never sees raw
//! delays.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf_num::bits::BitVec;
use ropuf_silicon::{Board, Environment, Technology};
use ropuf_telemetry as telemetry;

use crate::error::Error;
use crate::fleet::split_seed;
use crate::fuzzy::FuzzyExtractor;
use crate::puf::{ConfigurableRoPuf, EnrollOptions, Enrollment};
use crate::reenroll::{self, ReenrollOutcome, ReenrollPolicy};
use crate::robust::{enroll_robust, respond_robust, FaultPlan, FaultSummary};

/// Sub-stream of the enrollment seed reserved for key generation, far
/// from the per-pair indices (and distinct from the fault/retry streams
/// `u64::MAX - 2` / `u64::MAX - 3` inside `robust`).
const STREAM_KEY: u64 = u64::MAX - 4;

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::Started {}
    impl Sealed for super::Enrolled {}
}

/// Marker trait for lifecycle states; sealed, so `Started` and
/// `Enrolled` are the only states a [`Device`] can ever be in.
pub trait LifecycleState: sealed::Sealed {}

/// A powered device that has not enrolled: it can only generate or set
/// a key.
#[derive(Debug, Clone, Copy)]
pub struct Started(());

impl LifecycleState for Started {}

/// An enrolled device: it holds helper data and can reconstruct keys
/// and answer authentication reads.
#[derive(Debug, Clone)]
pub struct Enrolled {
    enrollment: Enrollment,
}

impl LifecycleState for Enrolled {}

/// A PUF-bearing device moving through the enrollment lifecycle.
///
/// The state parameter gates the API: [`Device::generate_key`] and
/// [`Device::set_key`] exist only on `Device<Started>` and *consume*
/// the device, returning the `Device<Enrolled>` successor, while
/// [`Device::get_key`] and [`Device::respond`] exist only on
/// `Device<Enrolled>`.
#[derive(Debug, Clone)]
pub struct Device<'a, S: LifecycleState> {
    board: &'a Board,
    tech: Technology,
    env: Environment,
    puf: ConfigurableRoPuf,
    opts: EnrollOptions,
    state: S,
}

impl<'a> Device<'a, Started> {
    /// Powers up a device over `board` with the given floorplan and
    /// enrollment options. No measurement happens yet.
    pub fn start(
        board: &'a Board,
        tech: &Technology,
        env: Environment,
        puf: ConfigurableRoPuf,
        opts: EnrollOptions,
    ) -> Self {
        Self {
            board,
            tech: *tech,
            env,
            puf,
            opts,
            state: Started(()),
        }
    }

    /// Enrolls the device and derives a *fresh uniform* key, returning
    /// the enrolled successor and the opaque [`KeyCode`] that
    /// [`Device::get_key`] later consumes (the `GenerateKey` op).
    ///
    /// Enrollment runs the fault-tolerant §III.B/§III.D pipeline under
    /// `plan`; unreadable pairs are excluded via §III.C. `repetition`
    /// is the (odd) repetition factor of the code-offset sketch.
    ///
    /// # Errors
    ///
    /// [`Error::Lifecycle`] when `repetition` is zero or even, or when
    /// the enrollment yields too few usable bits for even one key bit.
    pub fn generate_key(
        self,
        seed: u64,
        repetition: usize,
        plan: &FaultPlan,
    ) -> Result<(Device<'a, Enrolled>, KeyCode), Error> {
        let _span = telemetry::span("lifecycle.generate_key");
        let (enrollment, fx) = self.enroll_checked(seed, repetition, plan)?;
        let response = enrollment.expected_bits();
        let mut rng = StdRng::seed_from_u64(split_seed(seed, STREAM_KEY));
        let (_key, helper) = fx.generate(&mut rng, &response);
        telemetry::counter("lifecycle.keycodes", 1);
        Ok((
            self.into_enrolled(enrollment),
            KeyCode::from_parts(repetition, helper),
        ))
    }

    /// Enrolls the device and commits a *caller-supplied* key (the
    /// `SetKey` op): the returned [`KeyCode`] makes
    /// [`Device::get_key`] reproduce exactly `key`.
    ///
    /// # Errors
    ///
    /// [`Error::Lifecycle`] when `repetition` is zero or even, the
    /// enrollment yields no usable bits, or the key does not fit the
    /// enrolled response (`key.len() * repetition` bits required).
    pub fn set_key(
        self,
        seed: u64,
        key: &BitVec,
        repetition: usize,
        plan: &FaultPlan,
    ) -> Result<(Device<'a, Enrolled>, KeyCode), Error> {
        let _span = telemetry::span("lifecycle.set_key");
        let (enrollment, fx) = self.enroll_checked(seed, repetition, plan)?;
        let response = enrollment.expected_bits();
        let helper = fx
            .commit(key, &response)
            .map_err(|e| Error::Lifecycle(e.to_string()))?;
        telemetry::counter("lifecycle.keycodes", 1);
        Ok((
            self.into_enrolled(enrollment),
            KeyCode::from_parts(repetition, helper),
        ))
    }

    fn enroll_checked(
        &self,
        seed: u64,
        repetition: usize,
        plan: &FaultPlan,
    ) -> Result<(Enrollment, FuzzyExtractor), Error> {
        if repetition == 0 || repetition.is_multiple_of(2) {
            return Err(Error::Lifecycle(format!(
                "repetition factor must be odd, got {repetition}"
            )));
        }
        let robust = enroll_robust(
            &self.puf, seed, self.board, &self.tech, self.env, &self.opts, plan,
        );
        let enrollment = robust.enrollment;
        let fx = FuzzyExtractor::new(repetition);
        if fx.key_bits(enrollment.bit_count()) == 0 {
            return Err(Error::Lifecycle(format!(
                "enrollment produced {} usable bits, fewer than one repetition-{repetition} block",
                enrollment.bit_count()
            )));
        }
        Ok((enrollment, fx))
    }

    fn into_enrolled(self, enrollment: Enrollment) -> Device<'a, Enrolled> {
        Device {
            board: self.board,
            tech: self.tech,
            env: self.env,
            puf: self.puf,
            opts: self.opts,
            state: Enrolled { enrollment },
        }
    }
}

impl<'a> Device<'a, Enrolled> {
    /// Rehydrates an enrolled device from persisted helper data — the
    /// path a rebooted verifier takes, where enrollment happened once
    /// at provisioning time.
    pub fn resume(
        board: &'a Board,
        tech: &Technology,
        env: Environment,
        opts: EnrollOptions,
        enrollment: Enrollment,
    ) -> Result<Self, Error> {
        if enrollment.bit_count() == 0 {
            return Err(Error::Lifecycle(
                "cannot resume from an enrollment with no usable bits".to_string(),
            ));
        }
        let puf = ConfigurableRoPuf::new(
            enrollment
                .pairs()
                .iter()
                .flatten()
                .map(|p| p.spec().clone())
                .collect(),
        );
        Ok(Self {
            board,
            tech: *tech,
            env,
            puf,
            opts,
            state: Enrolled { enrollment },
        })
    }

    /// The helper data this device enrolled with.
    pub fn enrollment(&self) -> &Enrollment {
        &self.state.enrollment
    }

    /// One fault-screened, majority-voted authentication read-out:
    /// erasures (`None`) mark bits whose read failed unrecoverably.
    /// Deterministic in `seed` — the form a verifier drill replays.
    ///
    /// # Panics
    ///
    /// Panics if `votes` is zero or even (same contract as
    /// [`respond_robust`]).
    pub fn respond(
        &self,
        seed: u64,
        votes: usize,
        plan: &FaultPlan,
    ) -> (Vec<Option<bool>>, FaultSummary) {
        let _span = telemetry::span("lifecycle.respond");
        respond_robust(
            &self.state.enrollment,
            seed,
            self.board,
            &self.tech,
            self.env,
            &self.opts.probe,
            votes,
            plan,
        )
    }

    /// Issues a fresh Key Code against the *current* enrollment — the
    /// re-provisioning step after an accepted [`Device::reenroll`],
    /// where the old code no longer reproduces (the response bits
    /// changed with the configuration).
    ///
    /// # Errors
    ///
    /// [`Error::Lifecycle`] when `repetition` is zero or even, or the
    /// enrollment yields too few usable bits for even one key bit.
    pub fn issue_key(&self, seed: u64, repetition: usize) -> Result<KeyCode, Error> {
        if repetition == 0 || repetition.is_multiple_of(2) {
            return Err(Error::Lifecycle(format!(
                "repetition factor must be odd, got {repetition}"
            )));
        }
        let fx = FuzzyExtractor::new(repetition);
        if fx.key_bits(self.state.enrollment.bit_count()) == 0 {
            return Err(Error::Lifecycle(format!(
                "enrollment holds {} usable bits, fewer than one repetition-{repetition} block",
                self.state.enrollment.bit_count()
            )));
        }
        let response = self.state.enrollment.expected_bits();
        let mut rng = StdRng::seed_from_u64(split_seed(seed, STREAM_KEY));
        let (_key, helper) = fx.generate(&mut rng, &response);
        telemetry::counter("lifecycle.keycodes", 1);
        Ok(KeyCode::from_parts(repetition, helper))
    }

    /// Attempts a drift-triggered re-enrollment (see
    /// [`crate::reenroll`]): the device stays `Enrolled` either way —
    /// on acceptance it carries the replacement enrollment, on a typed
    /// rejection it keeps the old one. There is no intermediate
    /// unenrolled state, mirroring the server's generation-supersede
    /// semantics.
    ///
    /// Key codes issued against the *old* enrollment stop reproducing
    /// after an accepted re-enrollment (the response bits changed);
    /// callers must re-run [`Device::set_key`]-style provisioning via
    /// the server, or accept fresh codes.
    pub fn reenroll(
        self,
        seed: u64,
        policy: &ReenrollPolicy,
        plan: &FaultPlan,
    ) -> (Self, ReenrollOutcome) {
        let _span = telemetry::span("lifecycle.reenroll");
        let outcome = reenroll::reenroll(
            &self.puf,
            seed,
            self.board,
            &self.tech,
            self.env,
            &self.opts,
            policy,
            plan,
            &self.state.enrollment,
        );
        let device = match outcome.accepted() {
            Some(enrollment) => Self {
                state: Enrolled {
                    enrollment: enrollment.clone(),
                },
                ..self
            },
            None => self,
        };
        (device, outcome)
    }

    /// Reconstructs the key behind `code` from a fresh measurement (the
    /// `GetKey` op). Erased bits fall back to the enrolled expected
    /// bits — the device holds its own helper data, so this costs
    /// nothing and keeps reconstruction deterministic under faults.
    ///
    /// # Errors
    ///
    /// [`Error::Lifecycle`] when `code` does not fit this device's
    /// enrollment (wrong length or repetition).
    ///
    /// # Panics
    ///
    /// Panics if `votes` is zero or even.
    pub fn get_key(
        &self,
        seed: u64,
        votes: usize,
        plan: &FaultPlan,
        code: &KeyCode,
    ) -> Result<BitVec, Error> {
        let _span = telemetry::span("lifecycle.get_key");
        let (bits, _summary) = self.respond(seed, votes, plan);
        let expected = self.state.enrollment.expected_bits();
        let response: BitVec = bits
            .iter()
            .enumerate()
            .map(|(i, b)| b.unwrap_or_else(|| expected.get(i).expect("in range")))
            .collect();
        let fx = FuzzyExtractor::new(code.repetition());
        fx.reproduce(&response, code.helper())
            .map_err(|e| Error::Lifecycle(e.to_string()))
    }
}

/// Magic prefix of the serialized [`KeyCode`] form.
pub const KEY_CODE_MAGIC: &[u8; 4] = b"RPKC";

/// Newest Key Code format version this build writes and reads.
pub const KEY_CODE_VERSION: u16 = 1;

/// An opaque Key Code: the public output of `GenerateKey`/`SetKey`
/// and the input to `GetKey`.
///
/// Contains the repetition factor and the code-offset helper string —
/// public data by construction, never the key itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyCode {
    repetition: usize,
    helper: BitVec,
}

impl KeyCode {
    fn from_parts(repetition: usize, helper: BitVec) -> Self {
        Self { repetition, helper }
    }

    /// The repetition factor of the sketch.
    pub fn repetition(&self) -> usize {
        self.repetition
    }

    /// Length of the key this code reconstructs, in bits.
    pub fn key_bits(&self) -> usize {
        self.helper.len() / self.repetition
    }

    /// The public helper string.
    pub fn helper(&self) -> &BitVec {
        &self.helper
    }

    /// Serializes to the versioned wire form: [`KEY_CODE_MAGIC`],
    /// little-endian u16 version and repetition, u32 helper bit count,
    /// then the helper bits packed LSB-first.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.helper.len().div_ceil(8));
        out.extend_from_slice(KEY_CODE_MAGIC);
        out.extend_from_slice(&KEY_CODE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.repetition as u16).to_le_bytes());
        out.extend_from_slice(&(self.helper.len() as u32).to_le_bytes());
        let mut byte = 0u8;
        for (i, b) in self.helper.iter().enumerate() {
            if b {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                out.push(byte);
                byte = 0;
            }
        }
        if !self.helper.len().is_multiple_of(8) {
            out.push(byte);
        }
        out
    }

    /// Parses the versioned wire form.
    ///
    /// # Errors
    ///
    /// [`Error::UnsupportedVersion`] on a version mismatch and
    /// [`Error::Lifecycle`] on any structural defect (bad magic,
    /// truncation, even repetition, helper not a whole number of
    /// blocks).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, Error> {
        if bytes.len() < 12 || &bytes[..4] != KEY_CODE_MAGIC {
            return Err(Error::Lifecycle("missing RPKC key-code magic".to_string()));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != KEY_CODE_VERSION {
            return Err(Error::UnsupportedVersion {
                found: version,
                supported: KEY_CODE_VERSION,
            });
        }
        let repetition = u16::from_le_bytes([bytes[6], bytes[7]]) as usize;
        if repetition == 0 || repetition.is_multiple_of(2) {
            return Err(Error::Lifecycle(format!(
                "key-code repetition must be odd, got {repetition}"
            )));
        }
        let helper_bits = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        if helper_bits == 0 || !helper_bits.is_multiple_of(repetition) {
            return Err(Error::Lifecycle(format!(
                "helper of {helper_bits} bits is not a whole number of repetition-{repetition} blocks"
            )));
        }
        if bytes.len() != 12 + helper_bits.div_ceil(8) {
            return Err(Error::Lifecycle(format!(
                "key code of {} bytes cannot hold {helper_bits} helper bits",
                bytes.len()
            )));
        }
        let helper: BitVec = (0..helper_bits)
            .map(|i| bytes[12 + i / 8] >> (i % 8) & 1 == 1)
            .collect();
        Ok(Self { repetition, helper })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use ropuf_silicon::board::BoardId;
    use ropuf_silicon::SiliconSim;

    fn setup(units: usize) -> (Board, Technology) {
        let sim = SiliconSim::default_spartan();
        let mut rng = StdRng::seed_from_u64(77);
        let board = sim.grow_board_with_id(&mut rng, BoardId(0), units, 12);
        (board, *sim.technology())
    }

    fn started<'a>(board: &'a Board, tech: &Technology) -> Device<'a, Started> {
        Device::start(
            board,
            tech,
            Environment::nominal(),
            ConfigurableRoPuf::tiled_interleaved(board.len(), 4),
            EnrollOptions::default(),
        )
    }

    #[test]
    fn generate_key_then_get_key_round_trips() {
        let (board, tech) = setup(80);
        let plan = FaultPlan::scaled(0.0);
        let (device, code) = started(&board, &tech)
            .generate_key(41, 3, &plan)
            .expect("enrolls");
        assert_eq!(code.repetition(), 3);
        assert!(code.key_bits() >= 3);
        let k1 = device.get_key(7, 1, &plan, &code).unwrap();
        let k2 = device.get_key(8, 3, &plan, &code).unwrap();
        assert_eq!(k1.len(), code.key_bits());
        assert_eq!(k1, k2, "key is stable across read-outs");
    }

    #[test]
    fn set_key_reproduces_the_chosen_key() {
        let (board, tech) = setup(80);
        let plan = FaultPlan::scaled(0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let key: BitVec = (0..3).map(|_| rng.gen::<bool>()).collect();
        let (device, code) = started(&board, &tech)
            .set_key(41, &key, 3, &plan)
            .expect("enrolls");
        assert_eq!(device.get_key(9, 1, &plan, &code).unwrap(), key);
    }

    #[test]
    fn get_key_survives_faulty_reads() {
        let (board, tech) = setup(80);
        let clean = FaultPlan::scaled(0.0);
        let (device, code) = started(&board, &tech)
            .generate_key(41, 3, &clean)
            .expect("enrolls");
        let key = device.get_key(7, 1, &clean, &code).unwrap();
        // A moderate fault campaign: erasures fall back to expected
        // bits, so the key still reproduces, deterministically.
        let chaotic = FaultPlan::scaled(5.0);
        let a = device.get_key(7, 3, &chaotic, &code).unwrap();
        let b = device.get_key(7, 3, &chaotic, &code).unwrap();
        assert_eq!(a, b, "faulty read-out is deterministic in the seed");
        assert_eq!(a, key, "erasure fallback preserves the key");
    }

    #[test]
    fn generate_key_rejects_bad_repetition_and_tiny_enrollments() {
        let (board, tech) = setup(80);
        let plan = FaultPlan::scaled(0.0);
        let err = started(&board, &tech)
            .generate_key(41, 2, &plan)
            .unwrap_err();
        assert!(matches!(err, Error::Lifecycle(_)), "{err}");
        let err = started(&board, &tech)
            .generate_key(41, 0, &plan)
            .unwrap_err();
        assert!(matches!(err, Error::Lifecycle(_)), "{err}");
        // Repetition far beyond the bit budget: no full block fits.
        let err = started(&board, &tech)
            .generate_key(41, 101, &plan)
            .unwrap_err();
        assert!(err.to_string().contains("fewer than one"), "{err}");
    }

    #[test]
    fn resume_matches_the_original_enrollment() {
        let (board, tech) = setup(80);
        let plan = FaultPlan::scaled(0.0);
        let (device, code) = started(&board, &tech)
            .generate_key(41, 3, &plan)
            .expect("enrolls");
        let resumed = Device::resume(
            &board,
            &tech,
            Environment::nominal(),
            EnrollOptions::default(),
            device.enrollment().clone(),
        )
        .expect("resumes");
        assert_eq!(
            resumed.respond(13, 1, &plan),
            device.respond(13, 1, &plan),
            "resumed device answers identically"
        );
        assert_eq!(
            resumed.get_key(7, 1, &plan, &code).unwrap(),
            device.get_key(7, 1, &plan, &code).unwrap()
        );
    }

    #[test]
    fn resume_rejects_empty_enrollments() {
        let (board, tech) = setup(80);
        // A threshold nothing survives.
        let opts = EnrollOptions::builder().threshold_ps(1e12).build();
        let device = Device::start(
            &board,
            &tech,
            Environment::nominal(),
            ConfigurableRoPuf::tiled_interleaved(board.len(), 4),
            opts,
        );
        let err = device
            .generate_key(41, 1, &FaultPlan::scaled(0.0))
            .unwrap_err();
        assert!(matches!(err, Error::Lifecycle(_)));
    }

    #[test]
    fn reenroll_on_unaged_silicon_keeps_the_old_enrollment() {
        let (board, tech) = setup(120);
        let plan = FaultPlan::scaled(0.0);
        let device = Device::start(
            &board,
            &tech,
            Environment::nominal(),
            ConfigurableRoPuf::tiled_interleaved(120, 5),
            EnrollOptions {
                threshold_ps: 5.0,
                ..EnrollOptions::default()
            },
        );
        let (device, code) = device.generate_key(41, 1, &plan).expect("enrolls");
        let before = device.enrollment().clone();
        let (device, outcome) =
            device.reenroll(99, &crate::reenroll::ReenrollPolicy::default(), &plan);
        assert!(
            matches!(
                outcome,
                ReenrollOutcome::Rejected(crate::reenroll::ReenrollRejected::NotDrifted { .. })
            ),
            "{outcome:?}"
        );
        assert_eq!(device.enrollment(), &before, "enrollment untouched");
        // Old key codes still reproduce.
        assert!(device.get_key(7, 1, &plan, &code).is_ok());
    }

    #[test]
    fn issue_key_reprovisions_a_working_code() {
        let (board, tech) = setup(120);
        let plan = FaultPlan::scaled(0.0);
        let device = Device::start(
            &board,
            &tech,
            Environment::nominal(),
            ConfigurableRoPuf::tiled_interleaved(120, 5),
            EnrollOptions::default(),
        );
        let (device, original) = device.generate_key(41, 3, &plan).expect("enrolls");
        let reissued = device.issue_key(77, 3).expect("reissues");
        // Both codes reproduce from live reads, and the reissued key is
        // stable across read-outs.
        assert!(device.get_key(5, 1, &plan, &original).is_ok());
        let a = device.get_key(5, 1, &plan, &reissued).expect("new code");
        let b = device.get_key(6, 1, &plan, &reissued).expect("fresh read");
        assert_eq!(a, b, "reissued key is read-out independent");
        assert!(device.issue_key(1, 2).is_err(), "even repetition rejected");
    }

    #[test]
    fn reenroll_on_drifted_silicon_replaces_the_enrollment() {
        use ropuf_silicon::aging::AgingModel;
        let (board, tech) = setup(240);
        let plan = FaultPlan::scaled(0.0);
        let opts = EnrollOptions {
            threshold_ps: 5.0,
            ..EnrollOptions::default()
        };
        let puf = ConfigurableRoPuf::tiled_interleaved(240, 5);
        let old = puf.enroll_seeded(41, &board, &tech, Environment::nominal(), &opts);
        let policy = crate::reenroll::ReenrollPolicy::default();
        let corners = crate::reenroll::assessment_corners(Environment::nominal(), &policy);
        let model = AgingModel {
            sigma_drift_rel: 0.02,
            sigma_path_rel: 0.01,
            ..AgingModel::default()
        };
        let aged = (0..64)
            .map(|s| {
                let mut rng = StdRng::seed_from_u64(s);
                model.age_board(&mut rng, &board, 10.0)
            })
            .find(|aged| {
                crate::reenroll::assess_drift(&old, aged, &tech, &corners).enrollment_point_flips
                    > 0
            })
            .expect("some aging draw flips a bit");
        let device =
            Device::resume(&aged, &tech, Environment::nominal(), opts, old.clone()).unwrap();
        let (device, outcome) = device.reenroll(43, &policy, &plan);
        assert!(
            matches!(outcome, ReenrollOutcome::Accepted { .. }),
            "{outcome:?}"
        );
        assert_ne!(device.enrollment(), &old, "enrollment replaced");
        assert!(device.enrollment().bit_count() > 0);
    }

    #[test]
    fn key_code_bytes_round_trip() {
        let (board, tech) = setup(80);
        let plan = FaultPlan::scaled(0.0);
        let (_device, code) = started(&board, &tech)
            .generate_key(41, 3, &plan)
            .expect("enrolls");
        let bytes = code.to_bytes();
        assert_eq!(&bytes[..4], KEY_CODE_MAGIC);
        assert_eq!(KeyCode::from_bytes(&bytes).unwrap(), code);
    }

    #[test]
    fn key_code_rejects_malformed_bytes() {
        let (board, tech) = setup(80);
        let plan = FaultPlan::scaled(0.0);
        let (_device, code) = started(&board, &tech)
            .generate_key(41, 3, &plan)
            .expect("enrolls");
        let good = code.to_bytes();

        assert!(matches!(
            KeyCode::from_bytes(b"nope"),
            Err(Error::Lifecycle(_))
        ));
        let mut wrong_version = good.clone();
        wrong_version[4..6].copy_from_slice(&9u16.to_le_bytes());
        assert!(matches!(
            KeyCode::from_bytes(&wrong_version),
            Err(Error::UnsupportedVersion { found: 9, .. })
        ));
        let mut even_rep = good.clone();
        even_rep[6..8].copy_from_slice(&4u16.to_le_bytes());
        assert!(matches!(
            KeyCode::from_bytes(&even_rep),
            Err(Error::Lifecycle(_))
        ));
        let truncated = &good[..good.len() - 1];
        assert!(matches!(
            KeyCode::from_bytes(truncated),
            Err(Error::Lifecycle(_))
        ));
    }
}
