//! Spatial-gradient inference over enrollment envelopes.
//!
//! The simulated silicon (like real FPGA fabric) carries a smooth
//! systematic delay surface: a per-die degree-2 polynomial that
//! *dominates* the random per-unit variation. An attacker with probe
//! access to part of a die — their own sacrificial pairs, a diagnostic
//! interface, a decapped corner — can fit that surface and then read
//! *other* pairs' bits straight from public helper data: under a
//! split layout, "which stages did Case-2 select, and where do they
//! sit" correlates with which ring the surface made slower.
//!
//! The fit uses [`poly2d_design_matrix`] + ridge least squares from
//! `ropuf_num::linalg` — the attacker needs no access to the
//! enrollment pipeline, only the public floorplan. The defense under
//! test is the [`ropuf_core::distill`] regression distiller: when
//! enrollment selects on distilled residuals, the helper data
//! decorrelates from the surface and the same attack collapses to the
//! coin-flip baseline (cf. the randomized-placement line of
//! arXiv 2006.09290, which removes the gradient by layout instead).

use ropuf_num::linalg::poly2d_design_matrix;

use crate::envelope::{BoardEnvelopes, EnvelopeFleet};
use crate::AttackOutcome;

/// Degree of the surface the attacker fits (matches the silicon's
/// systematic field and the defender's distiller).
const SURFACE_DEGREE: usize = 2;
/// Ridge regularization of the surface fit.
const SURFACE_RIDGE: f64 = 1e-9;

/// Runs the gradient attack: on each board, the attacker probes the
/// units of the first `probed_pairs` pairs (measuring their true
/// delays), fits the systematic surface, and predicts the bits of every
/// *remaining* pair from helper data + floorplan alone. Returns the
/// outcome scored over the unprobed pairs of every board.
///
/// # Panics
///
/// Panics if `probed_pairs` is 0 or leaves no pair to attack.
pub fn gradient_attack(fleet: &EnvelopeFleet, probed_pairs: usize) -> AttackOutcome {
    let pairs = fleet.config.pairs_per_board();
    assert!(
        probed_pairs > 0 && probed_pairs < pairs,
        "need at least one probed and one target pair, got {probed_pairs} of {pairs}"
    );
    let mut score = 0.0;
    let mut samples = 0usize;
    for board in &fleet.boards {
        let surface = fit_surface(board, probed_pairs);
        for e in board.envelopes.iter().filter(|e| e.pair >= probed_pairs) {
            samples += 1;
            score += match predict(&surface, e) {
                Some(guess) if guess == e.bit => 1.0,
                Some(_) => 0.0,
                None => 0.5, // abstain
            };
        }
    }
    AttackOutcome::from_score("gradient", score, samples)
}

/// Fits the degree-2 surface to the probed units' (position, value)
/// samples and evaluates it at *every* unit position of the board.
fn fit_surface(board: &BoardEnvelopes, probed_pairs: usize) -> Vec<f64> {
    let probed_units: Vec<usize> = board
        .envelopes
        .iter()
        .filter(|e| e.pair < probed_pairs)
        .flat_map(|e| e.top_units.iter().chain(&e.bottom_units).copied())
        .collect();
    let points: Vec<(f64, f64)> = probed_units.iter().map(|&i| board.positions[i]).collect();
    let values: Vec<f64> = probed_units.iter().map(|&i| board.values[i]).collect();
    let design = poly2d_design_matrix(&points, SURFACE_DEGREE);
    let beta = design
        .least_squares_ridge(&values, SURFACE_RIDGE)
        .expect("ridge surface fit is positive definite");
    poly2d_design_matrix(&board.positions, SURFACE_DEGREE).matvec(&beta)
}

/// Predicts one envelope's bit: mean fitted surface over the selected
/// top stages minus the mean over the selected bottom stages. Forward
/// orientation (bit 1) selects the slow side of the top ring and the
/// fast side of the bottom ring, so a positive difference votes 1.
/// Abstains on empty selections or an exact tie.
fn predict(surface: &[f64], e: &crate::envelope::Envelope) -> Option<bool> {
    let mean = |selected: &[usize], units: &[usize]| -> Option<f64> {
        if selected.is_empty() {
            return None;
        }
        let sum: f64 = selected.iter().map(|&s| surface[units[s]]).sum();
        Some(sum / selected.len() as f64)
    };
    let top = mean(&e.top_selected, &e.top_units)?;
    let bottom = mean(&e.bottom_selected, &e.bottom_units)?;
    if top == bottom {
        None
    } else {
        Some(top > bottom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{EnvelopeConfig, Guard};
    use ropuf_core::config::ParityPolicy;

    fn config(distill: bool) -> EnvelopeConfig {
        EnvelopeConfig {
            seed: 23,
            boards: 24,
            units: 224,
            cols: 16,
            stages: 7,
            parity: ParityPolicy::Ignore,
            distill,
            quantize_ps: None,
            guard: Guard::Guarded,
            threads: 2,
        }
    }

    #[test]
    fn gradient_leaks_without_the_distiller_and_not_with_it() {
        let raw = gradient_attack(&EnvelopeFleet::generate(&config(false)), 8);
        let distilled = gradient_attack(&EnvelopeFleet::generate(&config(true)), 8);
        assert!(
            raw.advantage > 0.15,
            "split layout + systematic surface must leak, got {}",
            raw.advantage
        );
        assert!(
            distilled.advantage < raw.advantage / 2.0,
            "distiller must collapse the leak: raw {} vs distilled {}",
            raw.advantage,
            distilled.advantage
        );
        assert!(
            distilled.advantage.abs() < 0.15,
            "distilled advantage should sit near chance, got {}",
            distilled.advantage
        );
    }
}
