#![warn(missing_docs)]

//! Attack & security-analysis suite for the configurable RO PUF.
//!
//! The paper's §III security argument is structural: because Case-2
//! selection constrains both rings to *equal selected counts*, the
//! helper data a verifier persists (which inverters participate in each
//! ring) cannot leak the response bit through the one statistic a
//! passive attacker always gets for free — how many stages each ring
//! selected. Wilde et al., *Statistic-Based Security Analysis of Ring
//! Oscillator PUFs* (arXiv 1910.07068), show that RO PUFs routinely
//! leak through exactly such frequency statistics, so this crate stops
//! trusting the argument and verifies it empirically:
//!
//! * [`envelope`] — deterministic fleets of *enrollment envelopes*
//!   (the helper data an attacker can read), produced by the real
//!   guarded Case-2 kernel and by [`envelope::case2_unguarded`], a
//!   deliberately broken variant that skips the equal-count guard.
//! * [`count_leak`] — the unequal-selected-count attack: guess the bit
//!   from `sign(count_top − count_bottom)`. Against the guarded kernel
//!   it abstains on every envelope (counts are always equal) and sits
//!   at exactly the 0.5 coin-flip baseline; against the broken variant
//!   it wins almost every bit.
//! * [`gradient`] — spatial-gradient inference (motivated by the
//!   randomized-placement line, arXiv 2006.09290): an attacker who can
//!   measure part of a die fits the systematic degree-2 delay surface
//!   with [`ropuf_num::linalg`] and predicts *other* pairs' bits from
//!   their selected positions alone. Run with and without the
//!   [`ropuf_core::distill`] regression distiller in the enrollment
//!   pipeline — the distiller is the defense under test.
//! * [`transcript`] / [`model`] — CRP transcripts of a hypothetical
//!   *reconfigurable* deployment (the design the paper rejects in §II)
//!   and the modeling attacks that break it: a correlation/ordering
//!   attack and a logistic-regression harness (IRLS over
//!   [`ropuf_num::linalg::Matrix::weighted_least_squares_ridge`])
//!   generalizing [`ropuf_core::crp::LinearDelayAttack`].
//! * [`suite`] — one deterministic run of every attack, reported as
//!   `attacker advantage` (accuracy − 0.5) per attack, plus the
//!   [`suite::SuiteReport::security_readings`] the
//!   `FleetObservatory` gauges and the `check-bench` gate consume.
//!
//! Everything is seeded through [`ropuf_core::fleet::split_seed`] and
//! fanned out with [`ropuf_core::fleet::parallel_map_indexed`], so
//! transcripts, envelopes, and every reported advantage are
//! bit-identical at any thread count.

pub mod count_leak;
pub mod envelope;
pub mod gradient;
pub mod model;
pub mod suite;
pub mod transcript;

/// Outcome of one attack: its accuracy against ground truth and the
/// advantage over the 0.5 coin-flip baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackOutcome {
    /// Stable attack identifier (also the JSON/report key).
    pub name: &'static str,
    /// Fraction of bits guessed correctly; abstentions score 0.5.
    pub accuracy: f64,
    /// `accuracy − 0.5`: 0 means the attack learned nothing.
    pub advantage: f64,
    /// Number of bits the attack was scored on.
    pub samples: usize,
}

impl AttackOutcome {
    /// Builds an outcome from a summed score (hits count 1, abstentions
    /// 0.5) over `samples` predictions.
    pub fn from_score(name: &'static str, score: f64, samples: usize) -> Self {
        let accuracy = if samples == 0 {
            0.5
        } else {
            score / samples as f64
        };
        Self {
            name,
            accuracy,
            advantage: accuracy - 0.5,
            samples,
        }
    }
}
