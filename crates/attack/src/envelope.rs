//! Deterministic fleets of enrollment envelopes — the attacker's view.
//!
//! An *envelope* is what a passive attacker can actually read from a
//! provisioning database or an enrollment transcript: the pair's
//! floorplan (which die positions form each ring — public layout) and
//! the selected-stage sets (the helper data). The response bit and the
//! measured delays stay secret; they are carried here only so attacks
//! can be *scored*.
//!
//! Two selection kernels produce envelopes:
//!
//! * the real guarded [`ropuf_core::select::case2`], whose equal
//!   selected counts are the paper's §III defense, and
//! * [`case2_unguarded`], a deliberately broken variant that maximizes
//!   the same `|Σ α x − Σ β y|` objective but *without* the equal-count
//!   constraint. The unconstrained optimum degenerates to
//!   all-of-the-slow-ring / as-little-as-possible-of-the-fast-ring, so
//!   the count difference hands the bit to anyone who can subtract —
//!   which is exactly why the paper imposes the constraint.
//!
//! Board values come from the simulated silicon's per-unit inverter
//! delays (inter-die offset + systematic degree-2 surface + random
//! local variation). Pairs are laid out *split*: each top ring is a
//! contiguous block in the first half of the die, its bottom ring the
//! matching block in the second half, so the systematic surface is
//! *not* cancelled by interleaving — the worst case the spatial-gradient
//! attack exploits and the distiller defends.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf_core::config::{ConfigVector, ParityPolicy};
use ropuf_core::distill::Distiller;
use ropuf_core::fleet::{parallel_map_indexed, split_seed};
use ropuf_core::select::case2;
use ropuf_silicon::board::BoardId;
use ropuf_silicon::SiliconSim;

/// Which selection kernel enrolls the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guard {
    /// The real Case-2 kernel with the equal-selected-count guard.
    Guarded,
    /// [`case2_unguarded`]: the same objective with the guard removed.
    Unguarded,
}

/// Configuration of one envelope fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeConfig {
    /// Master seed; board `b` derives its streams from
    /// `split_seed(seed, b)`.
    pub seed: u64,
    /// Boards in the fleet.
    pub boards: usize,
    /// Delay units per board (must be `2 * stages * pairs`).
    pub units: usize,
    /// Grid width the units are placed on.
    pub cols: usize,
    /// Stages per ring.
    pub stages: usize,
    /// Parity policy handed to the selection kernel.
    pub parity: ParityPolicy,
    /// Run the enrollment values through the degree-2 regression
    /// distiller before selection (the spatial-gradient defense).
    pub distill: bool,
    /// Quantize values to this grid (picoseconds) before selection,
    /// forcing exact ties and therefore degenerate pairs. `None` leaves
    /// the silicon untouched.
    pub quantize_ps: Option<f64>,
    /// Selection kernel.
    pub guard: Guard,
    /// Worker threads (never changes the envelopes).
    pub threads: usize,
}

impl EnvelopeConfig {
    /// Ring pairs per board under the split layout.
    pub fn pairs_per_board(&self) -> usize {
        (self.units / 2) / self.stages
    }
}

/// One pair's enrollment envelope plus the scoring secrets.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Pair index on its board.
    pub pair: usize,
    /// Board unit indices of the top ring, in stage order (public
    /// floorplan).
    pub top_units: Vec<usize>,
    /// Board unit indices of the bottom ring (public floorplan).
    pub bottom_units: Vec<usize>,
    /// Helper data: which top stages were selected (indices into
    /// `top_units`).
    pub top_selected: Vec<usize>,
    /// Helper data: which bottom stages were selected.
    pub bottom_selected: Vec<usize>,
    /// Secret: the enrolled bit (used only to score attacks).
    pub bit: bool,
    /// Secret: the selection had zero margin (tie resolved by
    /// convention).
    pub degenerate: bool,
}

/// Every envelope of one board, plus the board-level context.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardEnvelopes {
    /// Board index in the fleet.
    pub board: usize,
    /// Die positions of every unit (public floorplan).
    pub positions: Vec<(f64, f64)>,
    /// Secret: per-unit delay values the selection ran on *before* any
    /// distillation (what an attacker with probe access to part of the
    /// die would measure).
    pub values: Vec<f64>,
    /// The board's enrollment envelopes.
    pub envelopes: Vec<Envelope>,
}

/// A deterministic fleet of enrollment envelopes.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvelopeFleet {
    /// The configuration that produced the fleet.
    pub config: EnvelopeConfig,
    /// Per-board envelopes, in board order regardless of thread count.
    pub boards: Vec<BoardEnvelopes>,
}

impl EnvelopeFleet {
    /// Grows and enrolls the fleet. Deterministic in `config.seed`:
    /// the per-board work is fanned out with [`parallel_map_indexed`],
    /// whose output order is the board order at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the configuration admits no pairs
    /// (`units < 2 * stages`) or a distill fit is impossible
    /// (fewer units than basis terms).
    pub fn generate(config: &EnvelopeConfig) -> Self {
        assert!(
            config.pairs_per_board() > 0,
            "envelope fleet needs units >= 2 * stages, got {} units x {} stages",
            config.units,
            config.stages
        );
        let sim = SiliconSim::default_spartan();
        let boards = parallel_map_indexed(config.boards, config.threads, |b| {
            generate_board(&sim, config, b)
        });
        Self {
            config: config.clone(),
            boards,
        }
    }

    /// Total envelopes across the fleet.
    pub fn len(&self) -> usize {
        self.boards.iter().map(|b| b.envelopes.len()).sum()
    }

    /// Whether the fleet holds no envelopes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of envelopes whose selection was degenerate.
    pub fn degenerate_rate(&self) -> f64 {
        let total = self.len();
        if total == 0 {
            return 0.0;
        }
        let degenerate: usize = self
            .boards
            .iter()
            .flat_map(|b| &b.envelopes)
            .filter(|e| e.degenerate)
            .count();
        degenerate as f64 / total as f64
    }
}

fn generate_board(sim: &SiliconSim, config: &EnvelopeConfig, b: usize) -> BoardEnvelopes {
    let board_seed = split_seed(config.seed, b as u64);
    let mut grow_rng = StdRng::seed_from_u64(split_seed(board_seed, 0));
    let board = sim.grow_board_with_id(&mut grow_rng, BoardId(b as u32), config.units, config.cols);
    let positions = board.positions();
    let mut values: Vec<f64> = board.units().iter().map(|u| u.inverter_ps()).collect();
    if let Some(q) = config.quantize_ps {
        for v in &mut values {
            *v = (*v / q).round() * q;
        }
    }
    let selection_values = if config.distill {
        Distiller::new(2)
            .residuals(&values, &positions)
            .expect("distill fit over a full board is well-posed")
    } else {
        values.clone()
    };
    let half = config.units / 2;
    let pairs = config.pairs_per_board();
    let stages = config.stages;
    let envelopes = (0..pairs)
        .map(|p| {
            let top_units: Vec<usize> = (p * stages..(p + 1) * stages).collect();
            let bottom_units: Vec<usize> = (half + p * stages..half + (p + 1) * stages).collect();
            let alpha: Vec<f64> = top_units.iter().map(|&i| selection_values[i]).collect();
            let beta: Vec<f64> = bottom_units.iter().map(|&i| selection_values[i]).collect();
            let (top_cfg, bottom_cfg, bit, degenerate) = match config.guard {
                Guard::Guarded => {
                    let s = case2(&alpha, &beta, config.parity);
                    (
                        s.top().clone(),
                        s.bottom().clone(),
                        s.bit(),
                        s.is_degenerate(),
                    )
                }
                Guard::Unguarded => {
                    let s = case2_unguarded(&alpha, &beta, config.parity);
                    (s.top, s.bottom, s.bit, s.margin == 0.0)
                }
            };
            Envelope {
                pair: p,
                top_units,
                bottom_units,
                top_selected: top_cfg.selected_indices(),
                bottom_selected: bottom_cfg.selected_indices(),
                bit,
                degenerate,
            }
        })
        .collect();
    BoardEnvelopes {
        board: b,
        positions,
        values,
        envelopes,
    }
}

/// Result of the guard-less Case-2 variant. Deliberately *not*
/// [`ropuf_core::select::PairSelection`]: that type asserts the
/// equal-count invariant this variant exists to violate.
#[derive(Debug, Clone, PartialEq)]
pub struct UnguardedSelection {
    /// Top-ring configuration (selected count unconstrained).
    pub top: ConfigVector,
    /// Bottom-ring configuration (selected count unconstrained).
    pub bottom: ConfigVector,
    /// Achieved `|Σ α x − Σ β y|`.
    pub margin: f64,
    /// `true` when the configured top ring is slower.
    pub bit: bool,
}

/// Case-2 selection **without** the equal-selected-count guard: the
/// broken variant the attack suite exists to catch.
///
/// Maximizing `|Σ α x − Σ β y|` over *independent* counts is
/// unconstrained: delays are positive, so the winning orientation
/// selects every admissible stage of the slow ring and as few as the
/// parity policy allows of the fast ring. The selected-count difference
/// therefore equals ±(near the full ring length) and leaks the bit to
/// the [`crate::count_leak`] attack almost perfectly — the empirical
/// proof of the paper's §III argument.
///
/// # Panics
///
/// Panics on empty or length-mismatched inputs.
pub fn case2_unguarded(alpha: &[f64], beta: &[f64], parity: ParityPolicy) -> UnguardedSelection {
    assert!(!alpha.is_empty(), "selection needs non-empty delay vectors");
    assert_eq!(alpha.len(), beta.len(), "rings must be equally long");
    let n = alpha.len();
    // Forward orientation: maximize Σ(selected α) − Σ(selected β).
    let (top_max, sum_top_max) = extreme_sum(alpha, parity, true);
    let (bot_min, sum_bot_min) = extreme_sum(beta, parity, false);
    let d_fwd = sum_top_max - sum_bot_min;
    // Reverse orientation: minimize the same signed difference.
    let (top_min, sum_top_min) = extreme_sum(alpha, parity, false);
    let (bot_max, sum_bot_max) = extreme_sum(beta, parity, true);
    let d_rev = sum_top_min - sum_bot_max;
    if d_fwd.abs() >= d_rev.abs() {
        UnguardedSelection {
            top: ConfigVector::from_selected(n, &top_max),
            bottom: ConfigVector::from_selected(n, &bot_min),
            margin: d_fwd.abs(),
            bit: d_fwd > 0.0,
        }
    } else {
        UnguardedSelection {
            top: ConfigVector::from_selected(n, &top_min),
            bottom: ConfigVector::from_selected(n, &bot_max),
            margin: d_rev.abs(),
            bit: d_rev > 0.0,
        }
    }
}

/// The admissible selection of `delays` maximizing (`maximize`) or
/// minimizing the selected-sum, as (sorted indices, sum). Under
/// `ParityPolicy::Ignore` the maximizer takes every stage and the
/// minimizer none; under `ForceOdd` they take the largest odd count and
/// the single cheapest/dearest stage respectively.
fn extreme_sum(delays: &[f64], parity: ParityPolicy, maximize: bool) -> (Vec<usize>, f64) {
    let n = delays.len();
    let mut order: Vec<usize> = (0..n).collect();
    if maximize {
        order.sort_by(|&a, &b| delays[b].total_cmp(&delays[a]).then(a.cmp(&b)));
    } else {
        order.sort_by(|&a, &b| delays[a].total_cmp(&delays[b]).then(a.cmp(&b)));
    }
    let count = match (parity, maximize) {
        (ParityPolicy::Ignore, true) => n,
        (ParityPolicy::Ignore, false) => 0,
        // Largest admissible count for the maximizer…
        (ParityPolicy::ForceOdd, true) => {
            if n % 2 == 1 {
                n
            } else {
                n - 1
            }
        }
        // …and the smallest (1) for the minimizer, taking the cheapest
        // stage. (For the maximizer's complement the dearest stage —
        // `order` is already sorted the right way for both.)
        (ParityPolicy::ForceOdd, false) => 1,
    };
    let mut chosen: Vec<usize> = order.into_iter().take(count).collect();
    let sum = chosen.iter().map(|&i| delays[i]).sum();
    chosen.sort_unstable();
    (chosen, sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(guard: Guard) -> EnvelopeConfig {
        EnvelopeConfig {
            seed: 11,
            boards: 4,
            units: 56,
            cols: 7,
            stages: 7,
            parity: ParityPolicy::Ignore,
            distill: false,
            quantize_ps: None,
            guard,
            threads: 2,
        }
    }

    #[test]
    fn unguarded_optimum_dominates_guarded() {
        let alpha = [10.0, 12.5, 11.0, 9.0, 10.3];
        let beta = [11.0, 10.0, 12.0, 10.5, 9.9];
        for parity in [ParityPolicy::Ignore, ParityPolicy::ForceOdd] {
            let guarded = case2(&alpha, &beta, parity);
            let broken = case2_unguarded(&alpha, &beta, parity);
            assert!(
                broken.margin >= guarded.margin() - 1e-12,
                "dropping a constraint cannot shrink the optimum"
            );
            assert_ne!(
                broken.top.selected_count(),
                broken.bottom.selected_count(),
                "the broken variant leaks through its counts"
            );
        }
    }

    #[test]
    fn unguarded_count_difference_encodes_the_bit() {
        let slow = [13.0, 12.0, 14.0];
        let fast = [9.0, 8.5, 9.5];
        let s = case2_unguarded(&slow, &fast, ParityPolicy::Ignore);
        assert!(s.bit, "top is slower");
        assert!(s.top.selected_count() > s.bottom.selected_count());
        let s = case2_unguarded(&fast, &slow, ParityPolicy::Ignore);
        assert!(!s.bit);
        assert!(s.top.selected_count() < s.bottom.selected_count());
    }

    #[test]
    fn unguarded_force_odd_respects_parity() {
        let alpha = [10.0, 12.0, 11.0, 9.5];
        let beta = [11.0, 10.5, 9.0, 12.5];
        let s = case2_unguarded(&alpha, &beta, ParityPolicy::ForceOdd);
        assert_eq!(s.top.selected_count() % 2, 1);
        assert_eq!(s.bottom.selected_count() % 2, 1);
    }

    #[test]
    fn guarded_fleet_always_has_equal_counts() {
        let fleet = EnvelopeFleet::generate(&small_config(Guard::Guarded));
        assert_eq!(fleet.len(), 4 * 4);
        for e in fleet.boards.iter().flat_map(|b| &b.envelopes) {
            assert_eq!(e.top_selected.len(), e.bottom_selected.len());
        }
    }

    #[test]
    fn generation_is_thread_invariant() {
        let mut one = small_config(Guard::Unguarded);
        one.threads = 1;
        let mut four = small_config(Guard::Unguarded);
        four.threads = 4;
        let a = EnvelopeFleet::generate(&one);
        let b = EnvelopeFleet::generate(&four);
        assert_eq!(a.boards, b.boards);
    }

    #[test]
    fn quantization_forces_degenerate_pairs() {
        let mut config = small_config(Guard::Guarded);
        config.boards = 8;
        config.quantize_ps = Some(25.0);
        let fleet = EnvelopeFleet::generate(&config);
        assert!(
            fleet.degenerate_rate() > 0.2,
            "coarse quantization must produce ties, got rate {}",
            fleet.degenerate_rate()
        );
        // Degenerate guarded envelopes resolve to the conventional 0.
        for e in fleet.boards.iter().flat_map(|b| &b.envelopes) {
            if e.degenerate {
                assert!(!e.bit);
            }
        }
    }
}
