//! Modeling attacks on CRP transcripts: correlation/ordering and
//! logistic regression.
//!
//! Both generalize the least-squares seed in
//! [`ropuf_core::crp::LinearDelayAttack`]. The correlation attack is
//! the cheapest statistic Wilde et al. describe — per-stage Pearson
//! correlation between the selection indicator and the response, which
//! already recovers the *ordering* of the secret stage delays. The
//! logistic attack fits the proper Bernoulli model of the same features
//! by IRLS, each inner step a
//! [`ropuf_num::linalg::Matrix::weighted_least_squares_ridge`] solve.

use ropuf_core::crp::Challenge;
use ropuf_num::linalg::Matrix;
use ropuf_num::stats::pearson;

/// The feature vector of the linear/logistic delay models:
/// `[1, x₁…x_n, −y₁…−y_n]` (intercept, top selections, negated bottom
/// selections) — identical to the encoding
/// [`ropuf_core::crp::LinearDelayAttack`] trains on.
pub fn features(challenge: &Challenge, stages: usize) -> Vec<f64> {
    let mut f = Vec::with_capacity(2 * stages + 1);
    f.push(1.0);
    for i in 0..stages {
        f.push(if challenge.top().is_selected(i) {
            1.0
        } else {
            0.0
        });
    }
    for i in 0..stages {
        f.push(if challenge.bottom().is_selected(i) {
            -1.0
        } else {
            0.0
        });
    }
    f
}

/// Errors from the trainers in this module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The training set is empty or shorter than the parameter count.
    NotEnoughData {
        /// CRPs supplied.
        observed: usize,
        /// CRPs required.
        required: usize,
    },
    /// The solver could not fit the training set (degenerate design).
    Degenerate,
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::NotEnoughData { observed, required } => {
                write!(f, "{observed} CRPs cannot fit a {required}-parameter model")
            }
            ModelError::Degenerate => write!(f, "training set is degenerate"),
        }
    }
}

impl std::error::Error for ModelError {}

/// The correlation/ordering attack: per-feature Pearson correlation
/// with the ±1 response, used directly as a linear score. Needs no
/// matrix solve at all — the statistic-based floor of what a transcript
/// leaks.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationAttack {
    weights: Vec<f64>,
    means: Vec<f64>,
    bias: f64,
    stages: usize,
}

impl CorrelationAttack {
    /// Correlates every feature column with the responses.
    ///
    /// # Errors
    ///
    /// [`ModelError::NotEnoughData`] on fewer than two CRPs.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or the challenges differ
    /// in stage count.
    pub fn train(challenges: &[Challenge], responses: &[bool]) -> Result<Self, ModelError> {
        assert_eq!(
            challenges.len(),
            responses.len(),
            "one response per challenge"
        );
        if challenges.len() < 2 {
            return Err(ModelError::NotEnoughData {
                observed: challenges.len(),
                required: 2,
            });
        }
        let stages = challenges[0].stages();
        let dims = 2 * stages + 1;
        let targets: Vec<f64> = responses
            .iter()
            .map(|&b| if b { 1.0 } else { -1.0 })
            .collect();
        let rows: Vec<Vec<f64>> = challenges.iter().map(|c| features(c, stages)).collect();
        let mut weights = vec![0.0; dims];
        let mut means = vec![0.0; dims];
        for j in 0..dims {
            let column: Vec<f64> = rows.iter().map(|r| r[j]).collect();
            means[j] = column.iter().sum::<f64>() / column.len() as f64;
            // Constant columns (including the intercept) carry no
            // correlation signal; pearson() returns None there.
            weights[j] = pearson(&column, &targets).unwrap_or(0.0);
        }
        let bias = targets.iter().sum::<f64>() / targets.len() as f64;
        Ok(Self {
            weights,
            means,
            bias,
            stages,
        })
    }

    /// Predicts the response to a challenge.
    ///
    /// # Panics
    ///
    /// Panics on a stage-count mismatch with the training data.
    pub fn predict(&self, challenge: &Challenge) -> bool {
        assert_eq!(challenge.stages(), self.stages, "stage count mismatch");
        let f = features(challenge, self.stages);
        let score: f64 = self
            .weights
            .iter()
            .zip(&f)
            .zip(&self.means)
            .map(|((w, x), m)| w * (x - m))
            .sum::<f64>()
            + self.bias;
        score > 0.0
    }

    /// Prediction accuracy over a labelled test set.
    ///
    /// # Panics
    ///
    /// Panics on mismatched lengths or an empty test set.
    pub fn accuracy(&self, challenges: &[Challenge], responses: &[bool]) -> f64 {
        accuracy_of(|c| self.predict(c), challenges, responses)
    }

    /// The per-feature correlation weights
    /// (`[intercept, top stages, bottom stages]`). The top-stage block
    /// recovers the *ordering* of the top ring's secret stage delays —
    /// compare with [`spearman`].
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The top-stage correlation block (length = stages).
    pub fn top_weights(&self) -> &[f64] {
        &self.weights[1..=self.stages]
    }
}

/// Logistic-regression delay model fitted by iteratively reweighted
/// least squares. Each IRLS step solves the weighted ridge normal
/// equations via
/// [`Matrix::weighted_least_squares_ridge`], so the whole attack rides
/// the same `num::linalg` core as the defender's calibration code.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticDelayAttack {
    weights: Vec<f64>,
    stages: usize,
    iterations: usize,
}

/// IRLS iteration cap — logistic fits on separable PUF data saturate
/// within a handful of steps.
const IRLS_MAX_ITERATIONS: usize = 12;
/// Ridge regularization: resolves the exact collinearity the equal-count
/// constraint induces (same reason as `LinearDelayAttack`) and bounds
/// the weights on separable data.
const IRLS_RIDGE: f64 = 1e-4;
/// Convergence threshold on the max weight update.
const IRLS_TOLERANCE: f64 = 1e-8;

impl LogisticDelayAttack {
    /// Fits `P(bit = 1) = σ(wᵀf)` to the transcript.
    ///
    /// # Errors
    ///
    /// [`ModelError::NotEnoughData`] with fewer CRPs than parameters;
    /// [`ModelError::Degenerate`] if an IRLS step cannot be solved.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or the challenges differ
    /// in stage count.
    pub fn train(challenges: &[Challenge], responses: &[bool]) -> Result<Self, ModelError> {
        assert_eq!(
            challenges.len(),
            responses.len(),
            "one response per challenge"
        );
        let stages = challenges.first().map_or(0, Challenge::stages);
        let params = 2 * stages + 1;
        if challenges.len() < params {
            return Err(ModelError::NotEnoughData {
                observed: challenges.len(),
                required: params,
            });
        }
        let design = Matrix::from_fn(challenges.len(), params, |i, j| {
            features(&challenges[i], stages)[j]
        });
        let y: Vec<f64> = responses.iter().map(|&b| f64::from(u8::from(b))).collect();
        let mut beta = vec![0.0; params];
        let mut iterations = 0;
        for _ in 0..IRLS_MAX_ITERATIONS {
            iterations += 1;
            let eta = design.matvec(&beta);
            let p: Vec<f64> = eta.iter().map(|&e| sigmoid(e)).collect();
            // Working weights and response of the IRLS step; the 1e-6
            // floor keeps saturated points from zeroing their rows.
            let w: Vec<f64> = p.iter().map(|&pi| (pi * (1.0 - pi)).max(1e-6)).collect();
            let z: Vec<f64> = eta
                .iter()
                .zip(&p)
                .zip(&y)
                .zip(&w)
                .map(|(((e, pi), yi), wi)| e + (yi - pi) / wi)
                .collect();
            let next = design
                .weighted_least_squares_ridge(&z, &w, IRLS_RIDGE)
                .map_err(|_| ModelError::Degenerate)?;
            let delta = beta
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            beta = next;
            if delta < IRLS_TOLERANCE {
                break;
            }
        }
        Ok(Self {
            weights: beta,
            stages,
            iterations,
        })
    }

    /// Predicts the response to a challenge.
    ///
    /// # Panics
    ///
    /// Panics on a stage-count mismatch with the training data.
    pub fn predict(&self, challenge: &Challenge) -> bool {
        assert_eq!(challenge.stages(), self.stages, "stage count mismatch");
        let f = features(challenge, self.stages);
        let eta: f64 = self.weights.iter().zip(&f).map(|(w, x)| w * x).sum();
        eta > 0.0
    }

    /// Prediction accuracy over a labelled test set.
    ///
    /// # Panics
    ///
    /// Panics on mismatched lengths or an empty test set.
    pub fn accuracy(&self, challenges: &[Challenge], responses: &[bool]) -> f64 {
        accuracy_of(|c| self.predict(c), challenges, responses)
    }

    /// The fitted weights `[w₀, w₁…w_n, v₁…v_n]` — the attacker's
    /// `ddiff` estimates up to scale.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// IRLS iterations the fit actually used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn accuracy_of(
    predict: impl Fn(&Challenge) -> bool,
    challenges: &[Challenge],
    responses: &[bool],
) -> f64 {
    assert_eq!(
        challenges.len(),
        responses.len(),
        "one response per challenge"
    );
    assert!(
        !challenges.is_empty(),
        "accuracy needs a non-empty test set"
    );
    let hits = challenges
        .iter()
        .zip(responses)
        .filter(|(c, &r)| predict(c) == r)
        .count();
    hits as f64 / challenges.len() as f64
}

/// Spearman rank correlation of two equal-length samples — how well one
/// sequence recovers the *ordering* of the other. `None` under the same
/// conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Average ranks (1-based; ties share their mean rank).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = mean_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transcript::{Transcript, TranscriptConfig};
    use ropuf_core::crp::LinearDelayAttack;

    fn transcript() -> Transcript {
        Transcript::generate(&TranscriptConfig {
            boards: 2,
            stages: 9,
            crps: 500,
            threads: 2,
            ..TranscriptConfig::default()
        })
    }

    #[test]
    fn correlation_attack_beats_chance_and_recovers_ordering() {
        let t = transcript();
        for b in &t.boards {
            let half = b.challenges.len() / 2;
            let model =
                CorrelationAttack::train(&b.challenges[..half], &b.responses[..half]).unwrap();
            let acc = model.accuracy(&b.challenges[half..], &b.responses[half..]);
            // The per-feature statistic ignores covariance, so it is the
            // crudest model in the catalogue — well above chance is all
            // it claims; ordering recovery below is its real output.
            assert!(acc > 0.65, "board {} correlation accuracy {acc}", b.board);
            let rho = spearman(model.top_weights(), &b.true_top_ddiffs).unwrap();
            assert!(
                rho > 0.6,
                "board {} ordering recovery {rho} (weights should rank the secret delays)",
                b.board
            );
        }
    }

    #[test]
    fn logistic_attack_matches_or_beats_the_linear_seed() {
        let t = transcript();
        for b in &t.boards {
            let half = b.challenges.len() / 2;
            let train_c = &b.challenges[..half];
            let train_r = &b.responses[..half];
            let logistic = LogisticDelayAttack::train(train_c, train_r).unwrap();
            let linear = LinearDelayAttack::train(train_c, train_r).unwrap();
            let acc_logistic = logistic.accuracy(&b.challenges[half..], &b.responses[half..]);
            let acc_linear = linear.accuracy(&b.challenges[half..], &b.responses[half..]);
            assert!(
                acc_logistic >= acc_linear - 0.02,
                "board {}: logistic {acc_logistic} vs linear {acc_linear}",
                b.board
            );
            assert!(
                acc_logistic > 0.85,
                "board {} logistic {acc_logistic}",
                b.board
            );
            assert!(logistic.iterations() >= 1);
            assert_eq!(logistic.weights().len(), 2 * t.stages + 1);
        }
    }

    #[test]
    fn trainers_reject_tiny_transcripts() {
        let t = transcript();
        let b = &t.boards[0];
        assert!(matches!(
            LogisticDelayAttack::train(&b.challenges[..3], &b.responses[..3]),
            Err(ModelError::NotEnoughData { .. })
        ));
        assert!(matches!(
            CorrelationAttack::train(&b.challenges[..1], &b.responses[..1]),
            Err(ModelError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn spearman_is_rank_invariant() {
        assert_eq!(spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), Some(1.0));
        assert_eq!(spearman(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]), Some(-1.0));
        // Monotone transforms do not change the statistic.
        let a: [f64; 4] = [0.1, 5.0, 2.0, 9.0];
        let b: Vec<f64> = a.iter().map(|x| x.exp()).collect();
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(spearman(&[1.0], &[2.0]), None);
    }

    #[test]
    fn ranks_handle_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 10.0]), vec![1.5, 3.0, 1.5]);
    }
}
