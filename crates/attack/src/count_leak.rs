//! The unequal-selected-count attack and the degenerate-tie
//! distinguisher — the two statistics a passive attacker reads straight
//! off persisted helper data.

use crate::envelope::EnvelopeFleet;
use crate::AttackOutcome;

/// Guesses every envelope's bit from `sign(count_top − count_bottom)`.
///
/// Case-2's forward orientation (top slower, bit 1) selects the *slow*
/// stages of the top ring, so any kernel that lets the counts float
/// selects more of the slow ring than of the fast ring — the count
/// difference is the bit. The guarded kernel pins the counts equal;
/// the attack then abstains (0.5 credit) on every envelope and lands at
/// exactly the coin-flip baseline, which is the paper's §III claim made
/// falsifiable.
pub fn count_leak(fleet: &EnvelopeFleet) -> AttackOutcome {
    let mut score = 0.0;
    let mut samples = 0usize;
    for e in fleet.boards.iter().flat_map(|b| &b.envelopes) {
        samples += 1;
        let top = e.top_selected.len();
        let bottom = e.bottom_selected.len();
        if top == bottom {
            score += 0.5; // abstain
        } else if (top > bottom) == e.bit {
            score += 1.0;
        }
    }
    AttackOutcome::from_score("count_leak", score, samples)
}

/// Exploits the degenerate-tie convention: a zero-margin Case-2
/// selection resolves its bit to 0, and under `ParityPolicy::Ignore`
/// such a pair is visible in the helper data as an *empty* selection
/// (the optimal prefix is `k = 0`). The attacker guesses 0 on every
/// empty-selection envelope and abstains elsewhere, so the advantage is
/// `0.5 × degenerate rate` — the distinguisher the
/// `select.case2.degenerate_zero_bias` telemetry counter tracks from
/// the inside.
pub fn degenerate_distinguisher(fleet: &EnvelopeFleet) -> AttackOutcome {
    let mut score = 0.0;
    let mut samples = 0usize;
    for e in fleet.boards.iter().flat_map(|b| &b.envelopes) {
        samples += 1;
        if e.top_selected.is_empty() && e.bottom_selected.is_empty() {
            // Visible tie: the convention says 0.
            if !e.bit {
                score += 1.0;
            }
        } else {
            score += 0.5; // abstain
        }
    }
    AttackOutcome::from_score("degenerate_zero_bias", score, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{EnvelopeConfig, EnvelopeFleet, Guard};
    use ropuf_core::config::ParityPolicy;

    fn config(guard: Guard) -> EnvelopeConfig {
        EnvelopeConfig {
            seed: 5,
            boards: 12,
            units: 112,
            cols: 8,
            stages: 7,
            parity: ParityPolicy::Ignore,
            distill: false,
            quantize_ps: None,
            guard,
            threads: 2,
        }
    }

    #[test]
    fn guarded_kernel_sits_exactly_at_chance() {
        let fleet = EnvelopeFleet::generate(&config(Guard::Guarded));
        let out = count_leak(&fleet);
        assert_eq!(out.accuracy, 0.5, "equal counts force abstention");
        assert_eq!(out.advantage, 0.0);
        assert_eq!(out.samples, fleet.len());
    }

    #[test]
    fn broken_kernel_is_cleanly_broken() {
        let fleet = EnvelopeFleet::generate(&config(Guard::Unguarded));
        let out = count_leak(&fleet);
        assert!(
            out.accuracy >= 0.9,
            "count difference must hand over the bit, got {}",
            out.accuracy
        );
    }

    #[test]
    fn degenerate_distinguisher_tracks_tie_rate() {
        let mut c = config(Guard::Guarded);
        c.quantize_ps = Some(25.0);
        let fleet = EnvelopeFleet::generate(&c);
        let rate = fleet.degenerate_rate();
        assert!(rate > 0.0, "quantization must force ties");
        let out = degenerate_distinguisher(&fleet);
        assert!(
            (out.advantage - 0.5 * rate).abs() < 1e-12,
            "advantage {} vs 0.5 x tie rate {rate}",
            out.advantage
        );
        // Without ties the distinguisher learns nothing.
        let clean = EnvelopeFleet::generate(&config(Guard::Guarded));
        assert_eq!(degenerate_distinguisher(&clean).advantage, 0.0);
    }
}
