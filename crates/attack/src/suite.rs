//! One deterministic run of the whole attack catalogue.
//!
//! The suite is the single entry point the `ropuf attack` CLI
//! subcommand, the fleet bench, and the `FleetObservatory` security
//! gauges all share: given a [`SuiteConfig`] it enrolls envelope fleets
//! (guarded, broken, distilled, forced-ties), collects CRP transcripts,
//! runs every attack, and reports each as an [`AttackOutcome`]. The
//! whole report is a pure function of the config — bit-identical across
//! runs and thread counts — so CI can diff it byte-for-byte.

use std::sync::Arc;

use ropuf_core::config::ParityPolicy;
use ropuf_core::crp::LinearDelayAttack;
use ropuf_telemetry as telemetry;
use telemetry::MemorySink;

use crate::count_leak::{count_leak, degenerate_distinguisher};
use crate::envelope::{EnvelopeConfig, EnvelopeFleet, Guard};
use crate::gradient::gradient_attack;
use crate::model::{spearman, CorrelationAttack, LogisticDelayAttack};
use crate::transcript::{Transcript, TranscriptConfig};
use crate::AttackOutcome;

/// Quantization grid (picoseconds) of the forced-ties arm — coarse
/// enough that a substantial fraction of pairs tie exactly.
const FORCED_TIE_QUANTUM_PS: f64 = 25.0;

/// Configuration of one suite run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteConfig {
    /// Master seed for every arm (each arm offsets it differently).
    pub seed: u64,
    /// Boards per envelope fleet.
    pub boards: usize,
    /// Delay units per envelope board.
    pub units: usize,
    /// Grid width of the envelope boards.
    pub cols: usize,
    /// Stages per ring (envelopes and transcripts).
    pub stages: usize,
    /// Pairs per board the gradient attacker probes.
    pub probed_pairs: usize,
    /// Boards in the CRP transcript.
    pub crp_boards: usize,
    /// CRPs collected per transcript board.
    pub crps: usize,
    /// Parity policy of enrollment and challenges.
    pub parity: ParityPolicy,
    /// Worker threads (never changes the report).
    pub threads: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            seed: 1910_07068, // Wilde et al.
            boards: 16,
            units: 224,
            cols: 16,
            stages: 7,
            probed_pairs: 8,
            crp_boards: 3,
            crps: 400,
            parity: ParityPolicy::Ignore,
            threads: 1,
        }
    }
}

impl SuiteConfig {
    /// The transcript configuration the modeling arms run on — exposed
    /// so callers (the CLI's `--dump-transcript`) can regenerate the
    /// *same* transcript the suite attacked.
    pub fn transcript_config(&self) -> TranscriptConfig {
        TranscriptConfig {
            seed: self.seed.wrapping_add(3),
            boards: self.crp_boards,
            stages: self.stages,
            crps: self.crps,
            parity: self.parity,
            threads: self.threads,
        }
    }

    /// Ring pairs per envelope board (mirrors
    /// [`EnvelopeConfig::pairs_per_board`]).
    pub fn pairs_per_board(&self) -> usize {
        (self.units / 2) / self.stages
    }
}

/// The report of one suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    /// The configuration that produced the report.
    pub config: SuiteConfig,
    /// Every attack outcome, in catalogue order.
    pub outcomes: Vec<AttackOutcome>,
    /// Degenerate-pair rate of the forced-ties fleet.
    pub forced_tie_rate: f64,
    /// `select.case2.degenerate` telemetry count during the forced-ties
    /// enrollment (inside view of what the distinguisher sees).
    pub telemetry_degenerate: u64,
    /// `select.case2.degenerate_zero_bias` telemetry count during the
    /// forced-ties enrollment.
    pub telemetry_degenerate_zero_bias: u64,
    /// Mean Spearman ρ between the correlation attack's top-stage
    /// weights and the true top-ring ddiffs — how much of the secret
    /// *ordering* the transcript gave away.
    pub ordering_recovery: f64,
}

impl SuiteReport {
    /// Runs every attack in the catalogue.
    ///
    /// # Panics
    ///
    /// Panics on a configuration no arm can run (no pairs, no probed
    /// pairs left to attack, transcripts shorter than the model's
    /// parameter count).
    pub fn run(config: &SuiteConfig) -> Self {
        let envelopes = |seed_offset: u64, guard, distill, quantize_ps| EnvelopeConfig {
            seed: config.seed.wrapping_add(seed_offset),
            boards: config.boards,
            units: config.units,
            cols: config.cols,
            stages: config.stages,
            parity: config.parity,
            distill,
            quantize_ps,
            guard,
            threads: config.threads,
        };

        // Count-leak arms: the same silicon (same seed offset) enrolled
        // by the guarded kernel and by the broken variant, so the two
        // outcomes differ only in the kernel under attack.
        let guarded = EnvelopeFleet::generate(&envelopes(0, Guard::Guarded, false, None));
        let broken = EnvelopeFleet::generate(&envelopes(0, Guard::Unguarded, false, None));
        let mut count_guarded = count_leak(&guarded);
        count_guarded.name = "count_leak_guarded";
        let mut count_broken = count_leak(&broken);
        count_broken.name = "count_leak_broken";

        // Degenerate distinguisher on the production fleet (feeds the
        // gauge) and on a forced-ties fleet (quantifies the leak the
        // `select.case2.degenerate_zero_bias` counter tracks), with the
        // enrollment's own telemetry harvested for cross-checking.
        let mut degenerate = degenerate_distinguisher(&guarded);
        degenerate.name = "degenerate_clean";
        let sink = Arc::new(MemorySink::default());
        let forced = telemetry::scoped(sink.clone(), || {
            EnvelopeFleet::generate(&envelopes(
                1,
                Guard::Guarded,
                false,
                Some(FORCED_TIE_QUANTUM_PS),
            ))
        });
        let snapshot = sink.snapshot().expect("scoped enrollment flushed");
        let telemetry_degenerate = snapshot.counter("select.case2.degenerate").unwrap_or(0);
        let telemetry_degenerate_zero_bias = snapshot
            .counter("select.case2.degenerate_zero_bias")
            .unwrap_or(0);
        let mut degenerate_forced = degenerate_distinguisher(&forced);
        degenerate_forced.name = "degenerate_forced_ties";

        // Gradient arms: raw enrollment vs the distiller defense, on
        // the same silicon.
        let mut gradient_raw = gradient_attack(
            &EnvelopeFleet::generate(&envelopes(2, Guard::Guarded, false, None)),
            config.probed_pairs,
        );
        gradient_raw.name = "gradient_raw";
        let mut gradient_distilled = gradient_attack(
            &EnvelopeFleet::generate(&envelopes(2, Guard::Guarded, true, None)),
            config.probed_pairs,
        );
        gradient_distilled.name = "gradient_distilled";

        // Modeling arms over one shared transcript, train/test split
        // per board.
        let transcript = Transcript::generate(&config.transcript_config());
        let mut correlation_score = 0.0;
        let mut logistic_score = 0.0;
        let mut linear_score = 0.0;
        let mut model_samples = 0usize;
        let mut rho_sum = 0.0;
        for (board, half) in transcript.split() {
            let (train_c, test_c) = board.challenges.split_at(half);
            let (train_r, test_r) = board.responses.split_at(half);
            let correlation = CorrelationAttack::train(train_c, train_r)
                .expect("suite transcripts exceed two CRPs");
            let logistic = LogisticDelayAttack::train(train_c, train_r)
                .expect("suite transcripts exceed the parameter count");
            let linear = LinearDelayAttack::train(train_c, train_r)
                .expect("suite transcripts exceed the parameter count");
            correlation_score += correlation.accuracy(test_c, test_r) * test_c.len() as f64;
            logistic_score += logistic.accuracy(test_c, test_r) * test_c.len() as f64;
            linear_score += linear.accuracy(test_c, test_r) * test_c.len() as f64;
            model_samples += test_c.len();
            rho_sum += spearman(correlation.top_weights(), &board.true_top_ddiffs).unwrap_or(0.0);
        }
        let correlation =
            AttackOutcome::from_score("correlation_model", correlation_score, model_samples);
        let logistic = AttackOutcome::from_score("logistic_model", logistic_score, model_samples);
        let linear = AttackOutcome::from_score("linear_model", linear_score, model_samples);
        let ordering_recovery = rho_sum / transcript.boards.len().max(1) as f64;

        Self {
            config: *config,
            outcomes: vec![
                count_guarded,
                count_broken,
                degenerate,
                degenerate_forced,
                gradient_raw,
                gradient_distilled,
                correlation,
                logistic,
                linear,
            ],
            forced_tie_rate: forced.degenerate_rate(),
            telemetry_degenerate,
            telemetry_degenerate_zero_bias,
            ordering_recovery,
        }
    }

    /// Looks up an outcome by name.
    pub fn outcome(&self, name: &str) -> Option<&AttackOutcome> {
        self.outcomes.iter().find(|o| o.name == name)
    }

    /// The gauge readings the `FleetObservatory` security catalogue
    /// consumes, as `(gauge name, advantage)` pairs:
    ///
    /// * `attacker_advantage_count_leak` — count leak against the
    ///   *guarded* kernel; anything above 0 says the §III guard broke.
    /// * `attacker_advantage_degenerate` — the degenerate-tie
    ///   distinguisher on the production fleet.
    /// * `attacker_advantage_gradient` — spatial-gradient inference
    ///   against the *distilled* enrollment (the deployed defense).
    /// * `attacker_advantage_broken_guard` — count leak against the
    ///   deliberately broken kernel. A **canary**: it must stay high
    ///   (≈0.5); a drop means the attack harness itself lost its teeth
    ///   and the other three gauges can no longer be trusted.
    pub fn security_readings(&self) -> Vec<(&'static str, f64)> {
        let pick = |name: &str| self.outcome(name).map_or(0.0, |o| o.advantage);
        vec![
            ("attacker_advantage_count_leak", pick("count_leak_guarded")),
            ("attacker_advantage_degenerate", pick("degenerate_clean")),
            ("attacker_advantage_gradient", pick("gradient_distilled")),
            ("attacker_advantage_broken_guard", pick("count_leak_broken")),
        ]
    }

    /// Renders the report as a human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        // No thread count here: stdout must be byte-identical across
        // `--threads` values so CI can diff runs.
        out.push_str(&format!(
            "attack suite: seed {} | {} boards x {} units | {} stages | {} CRPs x {} boards\n",
            self.config.seed,
            self.config.boards,
            self.config.units,
            self.config.stages,
            self.config.crps,
            self.config.crp_boards,
        ));
        out.push_str(&format!(
            "{:<24} {:>10} {:>10} {:>8}\n",
            "attack", "accuracy", "advantage", "samples"
        ));
        for o in &self.outcomes {
            out.push_str(&format!(
                "{:<24} {:>10.4} {:>+10.4} {:>8}\n",
                o.name, o.accuracy, o.advantage, o.samples
            ));
        }
        out.push_str(&format!(
            "forced-ties: rate {:.4} | telemetry degenerate {} | zero-bias {}\n",
            self.forced_tie_rate, self.telemetry_degenerate, self.telemetry_degenerate_zero_bias
        ));
        out.push_str(&format!(
            "ordering recovery (mean Spearman rho): {:+.4}\n",
            self.ordering_recovery
        ));
        out
    }

    /// Renders the report as JSON. Keys are unique across the whole
    /// document, so flat first-occurrence scans (the `check-bench`
    /// extractor) read the same values a real parser would.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        out.push_str(&format!("  \"boards\": {},\n", self.config.boards));
        // The thread count is deliberately absent: the document must be
        // byte-identical across `--threads` values for the CI diff.
        out.push_str(&format!("  \"stages\": {},\n", self.config.stages));
        out.push_str("  \"attacks\": {\n");
        let n = self.outcomes.len();
        for (i, o) in self.outcomes.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{ \"{}_accuracy\": {:.6}, \"{}_advantage\": {:.6}, \"{}_samples\": {} }}{}\n",
                o.name,
                o.name,
                o.accuracy,
                o.name,
                o.advantage,
                o.name,
                o.samples,
                if i + 1 < n { "," } else { "" }
            ));
        }
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"forced_tie_rate\": {:.6},\n",
            self.forced_tie_rate
        ));
        out.push_str(&format!(
            "  \"telemetry_degenerate\": {},\n",
            self.telemetry_degenerate
        ));
        out.push_str(&format!(
            "  \"telemetry_degenerate_zero_bias\": {},\n",
            self.telemetry_degenerate_zero_bias
        ));
        out.push_str(&format!(
            "  \"ordering_recovery\": {:.6}\n",
            self.ordering_recovery
        ));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SuiteConfig {
        SuiteConfig {
            boards: 8,
            units: 112,
            cols: 8,
            probed_pairs: 4,
            crp_boards: 2,
            crps: 200,
            threads: 2,
            ..SuiteConfig::default()
        }
    }

    #[test]
    fn suite_covers_the_catalogue_and_separates_guarded_from_broken() {
        let report = SuiteReport::run(&small());
        assert_eq!(report.outcomes.len(), 9);
        let guarded = report.outcome("count_leak_guarded").unwrap();
        let broken = report.outcome("count_leak_broken").unwrap();
        assert_eq!(guarded.accuracy, 0.5, "guard must force abstention");
        assert!(broken.accuracy >= 0.7, "broken got {}", broken.accuracy);
        assert!(report.outcome("logistic_model").unwrap().accuracy > 0.8);
        assert!(report.ordering_recovery > 0.5);
    }

    #[test]
    fn forced_ties_cross_check_telemetry_against_the_distinguisher() {
        let report = SuiteReport::run(&small());
        assert!(report.forced_tie_rate > 0.0, "quantization must force ties");
        // Every degenerate selection the kernel counted resolved to the
        // conventional 0 — the zero-bias counter equals the degenerate
        // counter, and both match the fleet the attacker scored.
        assert_eq!(
            report.telemetry_degenerate,
            report.telemetry_degenerate_zero_bias
        );
        let total = (report.config.boards * report.config.units / 2 / report.config.stages) as f64;
        assert_eq!(
            report.telemetry_degenerate,
            (report.forced_tie_rate * total).round() as u64
        );
        let forced = report.outcome("degenerate_forced_ties").unwrap();
        assert!(
            (forced.advantage - 0.5 * report.forced_tie_rate).abs() < 1e-12,
            "distinguisher advantage {} vs 0.5 x rate {}",
            forced.advantage,
            report.forced_tie_rate
        );
    }

    #[test]
    fn report_is_deterministic_across_thread_counts() {
        let one = SuiteReport::run(&SuiteConfig {
            threads: 1,
            ..small()
        });
        let four = SuiteReport::run(&SuiteConfig {
            threads: 4,
            ..small()
        });
        let mut expect = one.clone();
        expect.config.threads = 4;
        assert_eq!(expect, four);
        // The rendered documents are byte-identical — the thread count
        // never reaches stdout, so CI can diff runs directly.
        assert_eq!(one.to_json(), four.to_json());
        assert_eq!(one.render(), four.render());
    }

    #[test]
    fn security_readings_cover_the_gauge_catalogue() {
        let report = SuiteReport::run(&small());
        let readings = report.security_readings();
        let names: Vec<&str> = readings.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "attacker_advantage_count_leak",
                "attacker_advantage_degenerate",
                "attacker_advantage_gradient",
                "attacker_advantage_broken_guard",
            ]
        );
        let get = |n: &str| readings.iter().find(|(k, _)| *k == n).unwrap().1;
        assert_eq!(get("attacker_advantage_count_leak"), 0.0);
        assert!(
            get("attacker_advantage_broken_guard") > 0.2,
            "canary must stay broken"
        );
    }

    #[test]
    fn render_and_json_name_every_attack() {
        let report = SuiteReport::run(&small());
        let text = report.render();
        let json = report.to_json();
        for o in &report.outcomes {
            assert!(text.contains(o.name), "render missing {}", o.name);
            assert!(json.contains(&format!("\"{}_advantage\"", o.name)));
        }
        assert!(json.contains("\"forced_tie_rate\""));
    }
}
