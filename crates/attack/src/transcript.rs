//! Deterministic CRP transcripts of a *reconfigurable* deployment.
//!
//! §II of the paper rejects runtime-configurable operation precisely
//! because it exposes modeling surface; [`ropuf_core::crp`] implements
//! that mode so the attacks can be demonstrated. This module mass-
//! produces the attacker's training material: per-board transcripts of
//! `(challenge, response)` pairs, generated from seed-split RNG streams
//! ([`split_seed`]) and fanned out with [`parallel_map_indexed`], so a
//! transcript is bit-identical at any thread count — the property the
//! CI `attack-smoke` job diffs for.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf_core::config::ParityPolicy;
use ropuf_core::crp::{respond, Challenge};
use ropuf_core::fleet::{parallel_map_indexed, split_seed};
use ropuf_core::ro::{ConfigurableRo, RoPair};
use ropuf_silicon::board::BoardId;
use ropuf_silicon::{DelayProbe, Environment, SiliconSim};

/// Configuration of one transcript run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranscriptConfig {
    /// Master seed; board `b` derives its streams from
    /// `split_seed(seed, b)`.
    pub seed: u64,
    /// Boards (one ring pair each).
    pub boards: usize,
    /// Stages per ring.
    pub stages: usize,
    /// Challenge-response pairs collected per board.
    pub crps: usize,
    /// Parity policy of the drawn challenges.
    pub parity: ParityPolicy,
    /// Worker threads (never changes the transcript).
    pub threads: usize,
}

impl Default for TranscriptConfig {
    fn default() -> Self {
        Self {
            seed: 1910_07068, // Wilde et al.
            boards: 6,
            stages: 9,
            crps: 400,
            parity: ParityPolicy::Ignore,
            threads: 1,
        }
    }
}

/// One board's CRP transcript plus the scoring secrets.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardTranscript {
    /// Board index in the run.
    pub board: usize,
    /// The challenges, in collection order.
    pub challenges: Vec<Challenge>,
    /// The responses (noiseless, so exactly reproducible).
    pub responses: Vec<bool>,
    /// Secret: the top ring's true per-stage ddiffs (selected minus
    /// bypass delay) — the quantity a modeling attack implicitly
    /// estimates, kept for ordering-recovery scoring only.
    pub true_top_ddiffs: Vec<f64>,
    /// Secret: the bottom ring's true per-stage ddiffs.
    pub true_bottom_ddiffs: Vec<f64>,
}

/// A deterministic multi-board CRP transcript.
#[derive(Debug, Clone, PartialEq)]
pub struct Transcript {
    /// Stages per ring.
    pub stages: usize,
    /// Per-board transcripts, in board order at any thread count.
    pub boards: Vec<BoardTranscript>,
}

impl Transcript {
    /// Generates the transcript. Each board splits a grow stream
    /// (index 0) and a challenge stream (index 1) off its board seed;
    /// responses use the noiseless probe, so the transcript is a pure
    /// function of `config`.
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0`.
    pub fn generate(config: &TranscriptConfig) -> Self {
        assert!(config.stages > 0, "transcripts need at least one stage");
        let sim = SiliconSim::default_spartan();
        let tech = *sim.technology();
        let env = Environment::nominal();
        let probe = DelayProbe::noiseless();
        let boards = parallel_map_indexed(config.boards, config.threads, |b| {
            let board_seed = split_seed(config.seed, b as u64);
            let mut grow_rng = StdRng::seed_from_u64(split_seed(board_seed, 0));
            let board = sim.grow_board_with_id(
                &mut grow_rng,
                BoardId(b as u32),
                2 * config.stages,
                config.stages,
            );
            // Interleaved layout (top ring on even units, bottom on
            // odd): adjacent units share the systematic surface, so the
            // inter-ring bias cancels and the response actually depends
            // on the challenge — a split layout can leave one ring
            // wholly in the slow half of the die and the transcript
            // near-constant.
            let top = ConfigurableRo::try_new(&board, (0..config.stages).map(|i| 2 * i).collect())
                .expect("even unit indices are in range and distinct");
            let bottom =
                ConfigurableRo::try_new(&board, (0..config.stages).map(|i| 2 * i + 1).collect())
                    .expect("odd unit indices are in range and distinct");
            let pair = RoPair::try_new(top, bottom).expect("rings are equal-length");
            let mut crp_rng = StdRng::seed_from_u64(split_seed(board_seed, 1));
            let mut challenges = Vec::with_capacity(config.crps);
            let mut responses = Vec::with_capacity(config.crps);
            for _ in 0..config.crps {
                let c = Challenge::random(&mut crp_rng, config.stages, config.parity);
                let r = respond(&mut crp_rng, &pair, &c, &probe, env, &tech);
                challenges.push(c);
                responses.push(r);
            }
            BoardTranscript {
                board: b,
                challenges,
                responses,
                true_top_ddiffs: pair.top().true_ddiffs_ps(env, &tech),
                true_bottom_ddiffs: pair.bottom().true_ddiffs_ps(env, &tech),
            }
        });
        Self {
            stages: config.stages,
            boards,
        }
    }

    /// Renders the transcript as deterministic text, one line per CRP
    /// (`board <b> <top-config> <bottom-config> -> <bit>`), suitable
    /// for byte-level diffing across runs and thread counts.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for b in &self.boards {
            for (c, &r) in b.challenges.iter().zip(&b.responses) {
                out.push_str(&format!(
                    "board {} {} {} -> {}\n",
                    b.board,
                    c.top(),
                    c.bottom(),
                    u8::from(r)
                ));
            }
        }
        out
    }

    /// Splits each board's transcript into (train, test) halves.
    pub fn split(&self) -> Vec<(&BoardTranscript, usize)> {
        self.boards
            .iter()
            .map(|b| (b, b.challenges.len() / 2))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcripts_are_thread_invariant_and_reproducible() {
        let base = TranscriptConfig {
            boards: 3,
            crps: 50,
            ..TranscriptConfig::default()
        };
        let one = Transcript::generate(&TranscriptConfig { threads: 1, ..base });
        let four = Transcript::generate(&TranscriptConfig { threads: 4, ..base });
        assert_eq!(one, four);
        assert_eq!(one.to_text(), four.to_text());
        let again = Transcript::generate(&TranscriptConfig { threads: 2, ..base });
        assert_eq!(one, again);
    }

    #[test]
    fn transcript_text_is_parseable_and_balanced() {
        let t = Transcript::generate(&TranscriptConfig {
            boards: 2,
            crps: 20,
            stages: 5,
            ..TranscriptConfig::default()
        });
        let text = t.to_text();
        assert_eq!(text.lines().count(), 40);
        for line in text.lines() {
            let fields: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(fields.len(), 6, "line {line:?}");
            assert_eq!(fields[0], "board");
            assert_eq!(fields[4], "->");
            // The §III structural constraint holds for every challenge.
            let ones = |s: &str| s.chars().filter(|&c| c == '1').count();
            assert_eq!(ones(fields[2]), ones(fields[3]), "line {line:?}");
        }
    }
}
