//! Determinism and chance-band guarantees of the attack suite.
//!
//! Two properties CI leans on: transcripts and envelope fleets are
//! bit-identical at any thread count (so `attack-smoke` can diff runs
//! byte-for-byte), and the guarded Case-2 kernel holds the count-leak
//! attack inside the chance band at *every* seed while the broken
//! variant is cleanly broken on the same silicon.

use proptest::prelude::*;
use ropuf_attack::count_leak::count_leak;
use ropuf_attack::envelope::{EnvelopeConfig, EnvelopeFleet, Guard};
use ropuf_attack::transcript::{Transcript, TranscriptConfig};
use ropuf_core::config::ParityPolicy;

fn envelope_config(seed: u64, guard: Guard, parity: ParityPolicy) -> EnvelopeConfig {
    EnvelopeConfig {
        seed,
        boards: 6,
        units: 84,
        cols: 7,
        stages: 7,
        parity,
        distill: false,
        quantize_ps: None,
        guard,
        threads: 1,
    }
}

proptest! {
    /// Transcript generation is a pure function of the config: the
    /// thread count shapes the schedule, never the bits.
    #[test]
    fn transcripts_are_bit_identical_across_thread_counts(seed in any::<u64>()) {
        let config = TranscriptConfig {
            seed,
            boards: 3,
            stages: 5,
            crps: 40,
            parity: ParityPolicy::Ignore,
            threads: 1,
        };
        let reference = Transcript::generate(&config);
        for threads in [2usize, 4, 8] {
            let run = Transcript::generate(&TranscriptConfig { threads, ..config });
            prop_assert_eq!(&run.boards, &reference.boards, "threads = {}", threads);
            prop_assert_eq!(run.to_text(), reference.to_text(), "threads = {}", threads);
        }
    }

    /// Envelope fleets (the attacks' input) are equally schedule-free,
    /// for both kernels.
    #[test]
    fn envelope_fleets_are_bit_identical_across_thread_counts(
        seed in any::<u64>(),
        guarded in any::<bool>(),
    ) {
        let guard = if guarded { Guard::Guarded } else { Guard::Unguarded };
        let config = envelope_config(seed, guard, ParityPolicy::Ignore);
        let reference = EnvelopeFleet::generate(&config);
        for threads in [2usize, 4, 8] {
            let run = EnvelopeFleet::generate(&EnvelopeConfig { threads, ..config.clone() });
            prop_assert_eq!(&run.boards, &reference.boards, "threads = {}", threads);
        }
    }

    /// §III, falsified-or-verified at every seed: the equal-count guard
    /// pins the count-leak attack to *exactly* the coin-flip baseline
    /// (the attacker abstains on every envelope), while the unguarded
    /// kernel on the same silicon hands over almost every bit.
    #[test]
    fn guard_pins_count_leak_to_chance_while_broken_exceeds_it(
        seed in any::<u64>(),
        force_odd in any::<bool>(),
    ) {
        let parity = if force_odd { ParityPolicy::ForceOdd } else { ParityPolicy::Ignore };
        let guarded = count_leak(&EnvelopeFleet::generate(&envelope_config(
            seed,
            Guard::Guarded,
            parity,
        )));
        prop_assert_eq!(guarded.accuracy, 0.5, "seed {}", seed);
        prop_assert_eq!(guarded.advantage, 0.0, "seed {}", seed);

        let broken = count_leak(&EnvelopeFleet::generate(&envelope_config(
            seed,
            Guard::Unguarded,
            parity,
        )));
        prop_assert!(
            broken.accuracy >= 0.7,
            "seed {}: broken kernel must be cleanly broken, got {}",
            seed,
            broken.accuracy
        );
        prop_assert!(broken.advantage > guarded.advantage + 0.15, "seed {}", seed);
    }
}
