//! `ropuf` — command-line front end for the workspace.
//!
//! Operates on plain files so the pieces compose with shell pipelines:
//!
//! ```sh
//! # Grow a synthetic fleet and extract one PUF bit-string per board.
//! ropuf generate-vt --boards 40 --seed 7 --out fleet.csv
//! ropuf extract --dataset fleet.csv --stages 5 --mode case1 --out bits.txt
//!
//! # Run the NIST battery on the bit-strings (one stream per line).
//! ropuf nist --bits bits.txt
//!
//! # Enroll a whole fleet in parallel. Deterministic in --seed: the
//! # output is identical at any thread count (RAYON_NUM_THREADS=1 to
//! # check against the serial reference).
//! ropuf fleet --boards 64 --seed 7
//!
//! # Simulate a device: enroll it, store the helper data, read it back
//! # at a voltage/temperature corner. The board is regenerated from the
//! # seed, so enroll and respond must agree on --seed/--units.
//! ropuf enroll --seed 42 --units 480 --stages 7 --out device42.enrollment
//! ropuf respond --enrollment device42.enrollment --seed 42 --units 480 \
//!     --voltage 0.98 --temperature 25
//! ```

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf::attack::suite::{SuiteConfig as AttackSuiteConfig, SuiteReport as AttackSuiteReport};
use ropuf::attack::transcript::Transcript as AttackTranscript;
use ropuf::core::distill::DistillError;
use ropuf::core::fleet::{worker_threads, FleetAging, FleetConfig, FleetEngine};
use ropuf::core::monitor::{FleetObservatory, MonitorConfig, SweepPlan};
use ropuf::core::persist::{enrollment_from_text, enrollment_to_text};
use ropuf::core::puf::{ConfigurableRoPuf, EnrollOptions, SelectionMode};
use ropuf::core::robust::FaultPlan;
use ropuf::core::select::case2;
use ropuf::core::ParityPolicy;
use ropuf::dataset::extract::{board_bits, VirtualLayout};
use ropuf::dataset::inhouse::{InHouseConfig, InHouseDataset};
use ropuf::dataset::vt::{VtConfig, VtDataset};
use ropuf::dataset::ParseCsvError;
use ropuf::nist::suite::{run_suite, SuiteConfig};
use ropuf::num::bits::{BitVec, ParseBitsError};
use ropuf::server::{
    AccessLog, DrillSpec, FsyncPolicy, OpsConfig, PufService, ReenrollDrillSpec, ReenrollStage,
    ServiceConfig, ServiceOptions, Store,
};
use ropuf::silicon::aging::AgingModel;
use ropuf::silicon::{DelayProbe, Environment, SiliconSim};
use ropuf::telemetry;
use ropuf::telemetry::health::{Baseline, Status};

/// Everything that can go wrong in the CLI, typed per domain so exit
/// paths stay greppable (no `Box<dyn Error>` laundering).
#[derive(Debug)]
enum CliError {
    /// Bad or missing command-line input.
    Usage(String),
    /// A file could not be read or written.
    Io {
        path: String,
        source: std::io::Error,
    },
    /// A core pipeline error (enrollment, fleet, persistence parse).
    Core(ropuf::core::Error),
    /// A dataset CSV did not parse.
    Csv(ParseCsvError),
    /// A bit-stream file did not parse.
    Bits(ParseBitsError),
    /// The distiller could not fit the systematic model.
    Distill(DistillError),
    /// `monitor --fail-on` tripped: the fleet health verdict reached
    /// the configured severity.
    Unhealthy(Status),
    /// `attack --assert-guard` tripped: the guarded kernel leaked, or
    /// the deliberately broken canary stopped being broken.
    Insecure(String),
    /// The enrollment store could not be opened or mutated.
    Store(ropuf::server::StoreError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(msg) => write!(f, "{msg}"),
            Self::Io { path, source } => write!(f, "{path}: {source}"),
            Self::Core(e) => write!(f, "{e}"),
            Self::Csv(e) => write!(f, "{e}"),
            Self::Bits(e) => write!(f, "{e}"),
            Self::Distill(e) => write!(f, "{e}"),
            Self::Unhealthy(status) => write!(f, "fleet health is {status}"),
            Self::Insecure(msg) => write!(f, "{msg}"),
            Self::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Core(e) => Some(e),
            Self::Csv(e) => Some(e),
            Self::Bits(e) => Some(e),
            Self::Distill(e) => Some(e),
            Self::Store(e) => Some(e),
            Self::Usage(_) | Self::Unhealthy(_) | Self::Insecure(_) => None,
        }
    }
}

impl From<ropuf::server::StoreError> for CliError {
    fn from(e: ropuf::server::StoreError) -> Self {
        Self::Store(e)
    }
}

impl From<ropuf::core::Error> for CliError {
    fn from(e: ropuf::core::Error) -> Self {
        Self::Core(e)
    }
}

impl From<ropuf::core::persist::ParseEnrollmentError> for CliError {
    fn from(e: ropuf::core::persist::ParseEnrollmentError) -> Self {
        Self::Core(e.into())
    }
}

impl From<ParseCsvError> for CliError {
    fn from(e: ParseCsvError) -> Self {
        Self::Csv(e)
    }
}

impl From<ParseBitsError> for CliError {
    fn from(e: ParseBitsError) -> Self {
        Self::Bits(e)
    }
}

impl From<DistillError> for CliError {
    fn from(e: DistillError) -> Self {
        Self::Distill(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, mut options)) = parse(&args) else {
        return usage("expected: ropuf <command> [--flag value]...");
    };
    if let Err(e) = init_tracing(&mut options) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let result = {
        let _cmd_span = telemetry::span(command_span(&command));
        dispatch(&command, &options)
    };
    telemetry::flush();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Installs the telemetry sink from `--trace-out` (consumed here so
/// subcommands never see it) or, failing that, the `ROPUF_TRACE`
/// environment variable. Trace data goes to the named file (or stderr
/// for the `summary` target) — never stdout, which carries only
/// seed-determined results.
fn init_tracing(options: &mut HashMap<String, String>) -> Result<(), CliError> {
    match options.remove("trace-out") {
        Some(target) => telemetry::init_target(&target).map_err(|source| CliError::Io {
            path: target,
            source,
        }),
        None => telemetry::init_from_env()
            .map(|_| ())
            .map_err(|source| CliError::Io {
                path: format!("${}", telemetry::TRACE_ENV),
                source,
            }),
    }
}

/// Static span name for the top-level command (span names are interned
/// `&'static str`s, so map rather than format).
fn command_span(command: &str) -> &'static str {
    match command {
        "generate-vt" => "cli.generate-vt",
        "generate-inhouse" => "cli.generate-inhouse",
        "extract" => "cli.extract",
        "nist" => "cli.nist",
        "rth" => "cli.rth",
        "fleet" => "cli.fleet",
        "monitor" => "cli.monitor",
        "attack" => "cli.attack",
        "enroll" => "cli.enroll",
        "respond" => "cli.respond",
        "serve" => "cli.serve",
        "reenroll" => "cli.reenroll",
        _ => "cli.unknown",
    }
}

/// Splits `<command> (--key value)*`; returns `None` on malformed input.
fn parse(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let mut iter = args.iter();
    let command = iter.next()?.clone();
    if command.starts_with('-') {
        return None;
    }
    let mut options = HashMap::new();
    while let Some(key) = iter.next() {
        let key = key.strip_prefix("--")?;
        let value = iter.next()?;
        options.insert(key.to_string(), value.clone());
    }
    Some((command, options))
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "error: {problem}\n\n\
         commands:\n\
           generate-vt       --out FILE [--boards N=40] [--swept N=5] [--ros N=512] [--seed N=1]\n\
           generate-inhouse  --out FILE [--boards N=9] [--seed N=1]\n\
           extract           --dataset FILE --out FILE [--stages N=5] [--mode case1|case2] [--raw true]\n\
           nist              --bits FILE (one 0/1 stream per line)\n\
           rth               --dataset FILE (in-house CSV) [--usable N=13] [--max-rth PS=5]\n\
           fleet             [--boards N=64] [--seed N=1] [--units N=480] [--stages N=7]\n\
                             [--cols N=16] [--threads N=auto] [--votes N=1] [--threshold PS=0]\n\
                             [--faults SCALE=off] (chaos drill: inject measurement faults)\n\
           monitor           [--boards N=16] [--seed N=1] [--units N=120] [--stages N=5]\n\
                             [--cols N=8] [--threads N=auto] [--sweep nominal|voltage|temperature|full]\n\
                             [--years Y=5] [--format human|json|prometheus]\n\
                             [--baseline FILE] [--enroll-baseline FILE] [--fail-on warn|critical|never]\n\
                             [--faults SCALE=off] [--security true] (adds attacker_advantage_* gauges)\n\
           attack            [--seed N=191007068] [--boards N=16] [--units N=224] [--cols N=16]\n\
                             [--stages N=7] [--probed-pairs N=8] [--crp-boards N=3] [--crps N=400]\n\
                             [--threads N=auto] [--format human|json]\n\
                             [--dump-transcript FILE] (write the CRP transcript for diffing)\n\
                             [--assert-guard true] (exit nonzero unless guarded<=chance, broken>=0.7)\n\
           enroll            --out FILE [--seed N=1] [--units N=480] [--stages N=7]\n\
                             [--mode case1|case2] [--threshold PS=0]\n\
           respond           --enrollment FILE [--seed N=1] [--units N=480]\n\
                             [--voltage V=1.20] [--temperature C=25] [--votes N=1]\n\
           serve             --store DIR [--addr HOST:PORT=127.0.0.1:0] [--workers N=auto]\n\
                             [--shards N=8] [--fsync every|batched] [--drill true]\n\
                             [--devices N=16] [--ops N=10] [--seed N=3361] [--units N=80]\n\
                             [--cols N=12] [--votes N=1] [--repetition N=3]\n\
                             [--threads N=auto] [--faults SCALE=0] [--health true]\n\
                             [--admin HOST:PORT] [--access-log FILE] [--sample N=1]\n\
                             [--linger true] (keep serving after a drill)\n\
           reenroll          --store DIR [--devices N=24] [--seed N=4] [--years Y=10]\n\
                             [--units N=240] [--cols N=12] [--votes N=1] [--repetition N=3]\n\
                             [--threads N=auto] [--workers N=auto] [--shards N=8]\n\
                             [--fsync every|batched] [--stop-after enroll|assess|reenroll]\n\
                             [--resume true] (verify against an existing store)\n\
         every command also accepts --trace-out FILE|summary (or set\n\
         ROPUF_TRACE) to write structured telemetry; see docs/OBSERVABILITY.md"
    );
    ExitCode::FAILURE
}

fn dispatch(command: &str, opts: &HashMap<String, String>) -> Result<(), CliError> {
    match command {
        "generate-vt" => generate_vt(opts),
        "generate-inhouse" => generate_inhouse(opts),
        "extract" => extract(opts),
        "nist" => nist(opts),
        "rth" => rth(opts),
        "fleet" => fleet(opts),
        "monitor" => monitor(opts),
        "attack" => attack(opts),
        "enroll" => enroll(opts),
        "respond" => respond(opts),
        "serve" => serve(opts),
        "reenroll" => reenroll(opts),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?} (run with no arguments for usage)"
        ))),
    }
}

/// Parses `--faults SCALE` into a fault-injection plan: the default
/// chaos model with every rate multiplied by SCALE. `0` configures the
/// fault layer but injects nothing — output stays byte-identical to a
/// run without the flag. Absent flag means no fault layer at all.
fn fault_plan(opts: &HashMap<String, String>) -> Result<Option<FaultPlan>, CliError> {
    let Some(raw) = opts.get("faults") else {
        return Ok(None);
    };
    let scale: f64 = raw
        .parse()
        .map_err(|_| CliError::Usage(format!("--faults value {raw:?} is malformed")))?;
    if !(scale.is_finite() && scale >= 0.0) {
        return Err(CliError::Usage(format!(
            "--faults must be a finite non-negative scale, got {raw}"
        )));
    }
    let plan = FaultPlan::scaled(scale);
    plan.validate()
        .map_err(|e| CliError::Usage(format!("--faults {raw}: {e}")))?;
    Ok(Some(plan))
}

fn get<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse::<T>()
            .map_err(|_| CliError::Usage(format!("--{key} value {v:?} is malformed"))),
    }
}

fn required<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, CliError> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| CliError::Usage(format!("--{key} is required")))
}

fn parse_mode(opts: &HashMap<String, String>) -> Result<SelectionMode, CliError> {
    match opts.get("mode").map(String::as_str) {
        None | Some("case1") => Ok(SelectionMode::Case1),
        Some("case2") => Ok(SelectionMode::Case2),
        Some(other) => Err(CliError::Usage(format!(
            "--mode must be case1 or case2, got {other:?}"
        ))),
    }
}

fn read_file(path: &str) -> Result<String, CliError> {
    fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_string(),
        source,
    })
}

fn write_file(path: &str, contents: &str) -> Result<(), CliError> {
    fs::write(path, contents).map_err(|source| CliError::Io {
        path: path.to_string(),
        source,
    })
}

fn generate_vt(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let out = required(opts, "out")?;
    let boards = get(opts, "boards", 40usize)?;
    let swept = get(opts, "swept", 5usize)?;
    let ros = get(opts, "ros", 512usize)?;
    let seed = get(opts, "seed", 1u64)?;
    let data = VtDataset::generate(&VtConfig {
        boards,
        swept_boards: swept.min(boards),
        ros_per_board: ros,
        seed,
        ..VtConfig::default()
    });
    write_file(out, &data.to_csv())?;
    eprintln!("wrote {boards} boards ({swept} swept, {ros} ROs each) to {out}");
    Ok(())
}

fn generate_inhouse(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let out = required(opts, "out")?;
    let boards = get(opts, "boards", 9usize)?;
    let seed = get(opts, "seed", 1u64)?;
    let data = InHouseDataset::generate(&InHouseConfig {
        boards,
        seed,
        ..InHouseConfig::default()
    });
    write_file(out, &data.to_csv())?;
    eprintln!("wrote {boards} calibrated boards to {out}");
    Ok(())
}

fn extract(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let dataset = required(opts, "dataset")?;
    let out = required(opts, "out")?;
    let stages = get(opts, "stages", 5usize)?;
    let raw = get(opts, "raw", false)?;
    let mode = parse_mode(opts)?;
    let data = VtDataset::from_csv(&read_file(dataset)?, 16, 0)?;
    let mut lines = String::new();
    for board in data.boards() {
        if board.ro_count() < 8 * stages {
            return Err(CliError::Usage(format!(
                "board {} has too few ROs ({}) for {stages}-stage rings",
                board.id,
                board.ro_count()
            )));
        }
        let bits = board_bits(board, stages, mode, !raw)?;
        lines.push_str(&bits.to_binary_string());
        lines.push('\n');
    }
    write_file(out, &lines)?;
    eprintln!(
        "extracted {} bit-strings ({} bits each) to {out}",
        data.boards().len(),
        VirtualLayout::new(
            data.boards()[0].ro_count() - data.boards()[0].ro_count() % (8 * stages),
            stages
        )
        .pair_count()
    );
    Ok(())
}

fn nist(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let path = required(opts, "bits")?;
    let text = read_file(path)?;
    let streams: Vec<BitVec> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(BitVec::from_binary_str)
        .collect::<Result<_, _>>()?;
    if streams.is_empty() {
        return Err(CliError::Usage("no bit streams found".into()));
    }
    let config = if streams[0].len() < 1000 {
        SuiteConfig::short_streams()
    } else {
        SuiteConfig::default()
    };
    let suite_span = telemetry::span("cli.nist.suite");
    let report = run_suite(&streams, &config);
    drop(suite_span);
    println!("{report}");
    println!(
        "verdict: {}",
        if report.all_passed() { "PASS" } else { "FAIL" }
    );
    Ok(())
}

/// The §IV.E threshold sweep over an in-house (inverter-level) CSV:
/// reliable bits per board for the traditional and configurable schemes
/// as `Rth` rises.
fn rth(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let dataset = required(opts, "dataset")?;
    let usable = get(opts, "usable", 13usize)?;
    let max_rth = get(opts, "max-rth", 5.0f64)?;
    let data = InHouseDataset::from_csv(&read_file(dataset)?)?;
    if usable > data.units_per_ro() {
        return Err(CliError::Usage(format!(
            "--usable {usable} exceeds the dataset's {} units per RO",
            data.units_per_ro()
        )));
    }
    let mut trad = Vec::new();
    let mut conf = Vec::new();
    for board in data.boards() {
        for p in 0..board.ros.len() / 2 {
            let top = &board.ros[2 * p].ddiffs_ps[..usable];
            let bottom = &board.ros[2 * p + 1].ddiffs_ps[..usable];
            let t: f64 = top.iter().sum::<f64>() - bottom.iter().sum::<f64>();
            trad.push(t.abs());
            conf.push(case2(top, bottom, ParityPolicy::Ignore).margin());
        }
    }
    let boards = data.boards().len() as f64;
    println!("Rth(ps)  traditional  configurable   (mean reliable bits per board)");
    let mut r = 0.0;
    while r <= max_rth + 1e-9 {
        let count = |m: &[f64]| m.iter().filter(|&&x| x >= r).count() as f64 / boards;
        println!("{r:7.1}  {:11.1}  {:12.1}", count(&trad), count(&conf));
        r += 1.0;
    }
    Ok(())
}

/// Grows, enrolls, and evaluates a whole fleet in parallel.
///
/// Stdout carries only seed-determined data (per-board bits and corner
/// flip counts, fleet statistics), so the output is byte-identical at
/// any thread count; timings go to stderr.
fn fleet(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let boards = get(opts, "boards", 64usize)?;
    let seed = get(opts, "seed", 1u64)?;
    let units = get(opts, "units", 480usize)?;
    let stages = get(opts, "stages", 7usize)?;
    let cols = get(opts, "cols", 16usize)?;
    let threads = get(opts, "threads", worker_threads())?;
    let votes = get(opts, "votes", 1usize)?;
    let threshold = get(opts, "threshold", 0.0f64)?;
    let faults = fault_plan(opts)?;
    let opts = EnrollOptions::builder()
        .threshold_ps(threshold)
        .try_build()?;
    let config = FleetConfig {
        boards,
        units,
        cols,
        stages,
        opts,
        votes,
        faults,
        threads: Some(threads),
        corners: vec![
            Environment::nominal(),
            Environment::new(0.98, 25.0),
            Environment::new(1.20, 65.0),
        ],
        ..FleetConfig::default()
    };
    let corners = config.corners.clone();
    let setup_span = telemetry::span("cli.fleet.setup");
    let engine = FleetEngine::new(SiliconSim::default_spartan(), config)?;
    drop(setup_span);
    let run_span = telemetry::span("cli.fleet.run");
    let run = engine.run(seed);
    drop(run_span);
    let _report_span = telemetry::span("cli.fleet.report");
    for record in &run.records {
        println!(
            "board {:3}  {}  flips {}",
            record.board_index,
            record.expected_bits,
            record
                .corner_flips
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("/"),
        );
    }
    println!(
        "fleet: {} boards x {} bits, uniqueness {}",
        run.records.len(),
        engine.puf().pair_count(),
        run.uniqueness()
            .map_or("n/a".to_string(), |u| format!("{u:.4}")),
    );
    for (env, rate) in corners.iter().zip(run.corner_flip_rates()) {
        println!("corner {env}: flip rate {rate:.4}");
    }
    // Printed only when the fault layer actually did something, so a
    // zero-fault run stays byte-identical to the plain pipeline.
    if !run.quarantined.is_empty() || run.faults.has_activity() {
        for q in &run.quarantined {
            println!("board {:3}  QUARANTINED: {}", q.board_index, q.reason);
        }
        let f = &run.faults;
        println!(
            "faults: {} injected / {} reads, {} retries, {} recovered, {} unrecoverable, \
             {} pairs excluded, {} bits erased, {} boards quarantined, {} panics contained",
            f.injected_faults(),
            f.reads,
            f.retry_reads,
            f.recovered_reads,
            f.failed_reads,
            f.unreadable_pairs,
            f.response_erasures,
            f.quarantined_boards,
            f.contained_panics,
        );
    }
    eprintln!(
        "{} threads, {:.1} boards/sec ({:.2?})",
        run.threads,
        run.boards_per_sec(),
        run.elapsed
    );
    Ok(())
}

/// Samples the fleet health observatory once and reports the verdict.
///
/// Stdout carries only the seed-determined report (human table, JSON,
/// or Prometheus exposition per `--format`); timings go to stderr.
/// `--enroll-baseline FILE` snapshots the current gauge values for
/// later drift detection via `--baseline FILE`. `--fail-on` turns the
/// verdict into the exit code, so the command slots into CI gates and
/// cron-driven probes.
fn monitor(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let boards = get(opts, "boards", 16usize)?;
    let seed = get(opts, "seed", 1u64)?;
    let units = get(opts, "units", 120usize)?;
    let stages = get(opts, "stages", 5usize)?;
    let cols = get(opts, "cols", 8usize)?;
    let threads = get(opts, "threads", worker_threads())?;
    let years = get(opts, "years", 5.0f64)?;
    let threshold = get(opts, "threshold", 0.0f64)?;
    let sweep = match opts.get("sweep").map(String::as_str) {
        None | Some("full") => SweepPlan::Full,
        Some("nominal") => SweepPlan::Nominal,
        Some("voltage") => SweepPlan::Voltage,
        Some("temperature") => SweepPlan::Temperature,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--sweep must be nominal, voltage, temperature, or full, got {other:?}"
            )))
        }
    };
    let fail_on = match opts.get("fail-on").map(String::as_str) {
        None | Some("critical") => Some(Status::Critical),
        Some("warn") => Some(Status::Warn),
        Some("never") => None,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--fail-on must be warn, critical, or never, got {other:?}"
            )))
        }
    };
    let format = opts.get("format").map(String::as_str).unwrap_or("human");
    if !matches!(format, "human" | "json" | "prometheus") {
        return Err(CliError::Usage(format!(
            "--format must be human, json, or prometheus, got {format:?}"
        )));
    }
    let faults = fault_plan(opts)?;
    let config = MonitorConfig {
        fleet: FleetConfig {
            boards,
            units,
            cols,
            stages,
            opts: EnrollOptions::builder()
                .threshold_ps(threshold)
                .try_build()?,
            faults,
            ..FleetConfig::default()
        },
        sweep,
        aging: (years > 0.0).then(|| FleetAging {
            model: AgingModel::default(),
            years,
        }),
        threads: Some(threads),
    };
    let setup_span = telemetry::span("cli.monitor.setup");
    let mut obs = FleetObservatory::new(SiliconSim::default_spartan(), config)?;
    drop(setup_span);
    // `--security true` runs the attack suite (seeded from --seed, so
    // the readings are as deterministic as the fleet sample) and feeds
    // its attacker-advantage figures to the security gauges.
    let security: Vec<(&'static str, f64)> = if get(opts, "security", false)? {
        let attack_span = telemetry::span("cli.monitor.attack-suite");
        let report = AttackSuiteReport::run(&AttackSuiteConfig {
            seed,
            threads,
            ..AttackSuiteConfig::default()
        });
        drop(attack_span);
        report.security_readings()
    } else {
        Vec::new()
    };
    if let Some(path) = opts.get("enroll-baseline") {
        let enroll_span = telemetry::span("cli.monitor.enroll-baseline");
        let baseline = obs.enroll_baseline_with_security(seed, &security);
        drop(enroll_span);
        write_file(path, &baseline.to_json())?;
        eprintln!(
            "enrolled baseline of {} gauges to {path}",
            baseline.values.len()
        );
        return Ok(());
    }
    if let Some(path) = opts.get("baseline") {
        let baseline = Baseline::parse(&read_file(path)?)
            .map_err(|e| CliError::Usage(format!("{path}: {e}")))?;
        obs.set_baseline(baseline);
    }
    let sample_span = telemetry::span("cli.monitor.sample");
    let health = obs.sample_with_security(seed, &security);
    drop(sample_span);
    match format {
        "json" => print!("{}", health.report.to_json()),
        "prometheus" => print!("{}", health.report.render_prometheus("ropuf_")),
        _ => print!("{}", health.report.render()),
    }
    eprintln!(
        "{} corners x {} boards, {} threads, fresh pass {:.2?}{}",
        obs.corners().len(),
        boards,
        health.fresh.threads,
        health.fresh.elapsed,
        health
            .aged
            .as_ref()
            .map_or(String::new(), |a| format!(", aged pass {:.2?}", a.elapsed)),
    );
    match fail_on {
        Some(limit) if health.report.overall >= limit => {
            Err(CliError::Unhealthy(health.report.overall))
        }
        _ => Ok(()),
    }
}

/// Runs the `ropuf-attack` suite: every attack in the catalogue against
/// deterministic seed-split envelope fleets and CRP transcripts.
///
/// Stdout carries only the seed-determined report (human table or JSON
/// per `--format`), byte-identical at any thread count — CI diffs it
/// across runs and `--threads` values. `--dump-transcript FILE` writes
/// the exact CRP transcript the modeling arms attacked (also
/// thread-invariant). `--assert-guard true` turns the §III claim into
/// an exit code: fail unless the guarded kernel stays at chance AND the
/// deliberately broken variant is broken to at least 0.7 accuracy.
fn attack(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let defaults = AttackSuiteConfig::default();
    let config = AttackSuiteConfig {
        seed: get(opts, "seed", defaults.seed)?,
        boards: get(opts, "boards", defaults.boards)?,
        units: get(opts, "units", defaults.units)?,
        cols: get(opts, "cols", defaults.cols)?,
        stages: get(opts, "stages", defaults.stages)?,
        probed_pairs: get(opts, "probed-pairs", defaults.probed_pairs)?,
        crp_boards: get(opts, "crp-boards", defaults.crp_boards)?,
        crps: get(opts, "crps", defaults.crps)?,
        parity: ParityPolicy::Ignore,
        threads: get(opts, "threads", worker_threads())?,
    };
    let format = opts.get("format").map(String::as_str).unwrap_or("human");
    if !matches!(format, "human" | "json") {
        return Err(CliError::Usage(format!(
            "--format must be human or json, got {format:?}"
        )));
    }
    let pairs = config.pairs_per_board();
    if pairs == 0 {
        return Err(CliError::Usage(format!(
            "--units {} leaves no ring pairs at --stages {} (need units >= 2 x stages)",
            config.units, config.stages
        )));
    }
    if config.probed_pairs == 0 || config.probed_pairs >= pairs {
        return Err(CliError::Usage(format!(
            "--probed-pairs must leave at least one unprobed pair (1..{pairs}), got {}",
            config.probed_pairs
        )));
    }
    let params = 2 * config.stages + 1;
    if config.crps / 2 < params || config.crp_boards == 0 {
        return Err(CliError::Usage(format!(
            "--crps {} cannot train a {params}-parameter model on half the transcript",
            config.crps
        )));
    }
    if let Some(path) = opts.get("dump-transcript") {
        let dump_span = telemetry::span("cli.attack.transcript");
        let transcript = AttackTranscript::generate(&config.transcript_config());
        drop(dump_span);
        write_file(path, &transcript.to_text())?;
        eprintln!(
            "wrote {} CRPs x {} boards to {path}",
            config.crps, config.crp_boards
        );
    }
    let run_span = telemetry::span("cli.attack.suite");
    let report = AttackSuiteReport::run(&config);
    drop(run_span);
    match format {
        "json" => println!("{}", report.to_json()),
        _ => print!("{}", report.render()),
    }
    if get(opts, "assert-guard", false)? {
        let fetch = |name: &str| {
            report
                .outcome(name)
                .map(|o| (o.accuracy, o.advantage))
                .unwrap_or((0.5, 0.0))
        };
        let (_, guarded_adv) = fetch("count_leak_guarded");
        let (broken_acc, _) = fetch("count_leak_broken");
        if guarded_adv > 0.1 {
            return Err(CliError::Insecure(format!(
                "guarded kernel leaked: count-leak advantage {guarded_adv:.4} exceeds 0.1"
            )));
        }
        if broken_acc < 0.7 {
            return Err(CliError::Insecure(format!(
                "broken-kernel canary limp: count-leak accuracy {broken_acc:.4} below 0.7 \
                 (the attack harness lost its teeth)"
            )));
        }
        eprintln!(
            "guard assertion held: guarded advantage {guarded_adv:.4} <= 0.1, \
             broken accuracy {broken_acc:.4} >= 0.7"
        );
    }
    Ok(())
}

/// Regenerates the deterministic demo board for `seed`/`units`.
fn demo_board(seed: u64, units: usize) -> (ropuf::silicon::Board, ropuf::silicon::Technology) {
    let mut sim = SiliconSim::default_spartan();
    let mut rng = StdRng::seed_from_u64(seed);
    let board = sim.grow_board(&mut rng, units, 16);
    (board, *sim.technology())
}

fn enroll(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let out = required(opts, "out")?;
    let seed = get(opts, "seed", 1u64)?;
    let units = get(opts, "units", 480usize)?;
    let stages = get(opts, "stages", 7usize)?;
    let threshold = get(opts, "threshold", 0.0f64)?;
    let mode = parse_mode(opts)?;
    let grow_span = telemetry::span("cli.enroll.grow");
    let (board, tech) = demo_board(seed, units);
    drop(grow_span);
    let enroll_opts = EnrollOptions::builder()
        .selection(mode)
        .threshold_ps(threshold)
        .try_build()?;
    // Per-pair seeded streams, fanned out over the machine's cores:
    // bit-identical to the serial `enroll_seeded` reference.
    let enroll_span = telemetry::span("cli.enroll.enroll");
    let enrollment = ConfigurableRoPuf::tiled_interleaved(units, stages).enroll_par(
        seed ^ 0xE14A,
        &board,
        &tech,
        Environment::nominal(),
        &enroll_opts,
        worker_threads(),
    );
    drop(enroll_span);
    write_file(out, &enrollment_to_text(&enrollment))?;
    eprintln!(
        "enrolled {} bits ({} pairs provisioned) to {out}",
        enrollment.bit_count(),
        enrollment.pairs().len()
    );
    println!("{}", enrollment.expected_bits());
    Ok(())
}

fn respond(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let path = required(opts, "enrollment")?;
    let seed = get(opts, "seed", 1u64)?;
    let units = get(opts, "units", 480usize)?;
    let voltage = get(opts, "voltage", 1.20f64)?;
    let temperature = get(opts, "temperature", 25.0f64)?;
    let votes = get(opts, "votes", 1usize)?;
    let enrollment = enrollment_from_text(&read_file(path)?)?;
    let grow_span = telemetry::span("cli.respond.grow");
    let (board, tech) = demo_board(seed, units);
    drop(grow_span);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4E5);
    let env = Environment::new(voltage, temperature);
    let probe = DelayProbe::new(0.25, 1);
    let respond_span = telemetry::span("cli.respond.respond");
    let response = if votes > 1 {
        enrollment.respond_majority(&mut rng, &board, &tech, env, &probe, votes)
    } else {
        enrollment.respond(&mut rng, &board, &tech, env, &probe)
    };
    drop(respond_span);
    let flips = response
        .hamming_distance(&enrollment.expected_bits())
        .expect("lengths match");
    eprintln!("{flips} flips vs enrollment at {env}");
    println!("{response}");
    Ok(())
}

/// Runs the device-authentication server over an on-disk enrollment
/// store. With `--drill true` the command enrolls `--devices` boards
/// through the typestate lifecycle, drives the scripted auth mix
/// against itself, prints the deterministic transcript to stdout, and
/// exits — the CI-facing smoke mode. Without it, the server blocks
/// serving the bound address until killed.
fn serve(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let store_dir = required(opts, "store")?;
    let addr_raw = get(opts, "addr", "127.0.0.1:0".to_string())?;
    let addr: std::net::SocketAddr = addr_raw
        .parse()
        .map_err(|_| CliError::Usage(format!("--addr value {addr_raw:?} is malformed")))?;
    let workers = get(opts, "workers", worker_threads())?;
    if workers == 0 {
        return Err(CliError::Usage("--workers must be at least 1".to_string()));
    }
    let shards = get(opts, "shards", 8usize)?;
    if shards == 0 {
        return Err(CliError::Usage("--shards must be at least 1".to_string()));
    }
    let drill = get(opts, "drill", false)?;
    let health = get(opts, "health", false)?;
    let linger = get(opts, "linger", false)?;
    if linger && !drill {
        return Err(CliError::Usage(
            "--linger only applies to --drill true (a plain serve already runs forever)"
                .to_string(),
        ));
    }
    let admin: Option<std::net::SocketAddr> = match opts.get("admin") {
        None => None,
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| CliError::Usage(format!("--admin value {raw:?} is malformed")))?,
        ),
    };
    let sample = get(opts, "sample", 1u64)?;
    if sample == 0 {
        return Err(CliError::Usage(
            "--sample must be at least 1 (1 logs every request)".to_string(),
        ));
    }
    if opts.contains_key("sample") && !opts.contains_key("access-log") {
        return Err(CliError::Usage(
            "--sample requires --access-log FILE".to_string(),
        ));
    }
    let access_log = match opts.get("access-log") {
        None => None,
        Some(path) => Some(
            AccessLog::create(std::path::Path::new(path), sample).map_err(|source| {
                CliError::Io {
                    path: path.clone(),
                    source,
                }
            })?,
        ),
    };
    let fsync = match opts.get("fsync").map(String::as_str) {
        None | Some("every") => FsyncPolicy::EveryRecord,
        Some("batched") => FsyncPolicy::Batched,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--fsync must be every or batched, got {other:?}"
            )))
        }
    };
    let spec = DrillSpec {
        seed: get(opts, "seed", DrillSpec::default().seed)?,
        devices: get(opts, "devices", 16u64)?,
        ops_per_device: get(opts, "ops", 10u64)?,
        units: get(opts, "units", 80usize)?,
        cols: get(opts, "cols", 12usize)?,
        votes: get(opts, "votes", 1usize)?,
        repetition: get(opts, "repetition", 3usize)?,
        fault_scale: get(opts, "faults", 0.0f64)?,
        client_threads: get(opts, "threads", worker_threads())?,
    };
    if spec.votes == 0 || spec.votes.is_multiple_of(2) {
        return Err(CliError::Usage(format!(
            "--votes must be odd, got {}",
            spec.votes
        )));
    }
    if spec.repetition == 0 || spec.repetition.is_multiple_of(2) {
        return Err(CliError::Usage(format!(
            "--repetition must be odd, got {}",
            spec.repetition
        )));
    }
    if !(spec.fault_scale.is_finite() && spec.fault_scale >= 0.0) {
        return Err(CliError::Usage(format!(
            "--faults must be a finite non-negative scale, got {}",
            spec.fault_scale
        )));
    }

    let open_span = telemetry::span("cli.serve.open");
    let store = Store::open(std::path::Path::new(store_dir), shards, fsync)?;
    // Drills get a frozen manual clock so even the windowed ops-plane
    // figures are a pure function of the request stream; a real server
    // windows over wall time.
    let ops = if drill {
        OpsConfig {
            clock: std::sync::Arc::new(telemetry::ManualClock::at(0)),
            ..OpsConfig::default()
        }
    } else {
        OpsConfig::default()
    };
    let service = std::sync::Arc::new(PufService::with_options(
        store,
        ServiceOptions {
            config: ServiceConfig::default(),
            ops,
            access_log,
        },
    ));
    drop(open_span);
    let server =
        ropuf::server::serve_with_admin(std::sync::Arc::clone(&service), addr, workers, admin)
            .map_err(|source| CliError::Io {
                path: addr_raw.clone(),
                source,
            })?;
    eprintln!(
        "serving on {} ({} workers, {} shards, fsync {})",
        server.addr(),
        workers,
        shards,
        if fsync == FsyncPolicy::EveryRecord {
            "every"
        } else {
            "batched"
        },
    );
    if let Some(admin_addr) = server.admin_addr() {
        eprintln!("admin on http://{admin_addr} (/metrics, /healthz, /slo)");
    }

    if drill {
        let drill_span = telemetry::span("cli.serve.drill");
        let report =
            ropuf::server::run_drill(server.addr(), &spec).map_err(|source| CliError::Io {
                path: format!("drill against {}", server.addr()),
                source,
            })?;
        drop(drill_span);
        // Stdout carries only the seed-determined transcript; tallies
        // and health go to stderr like every other subcommand.
        print!("{}", report.transcript);
        eprintln!(
            "drill: {} devices, {} ops ({} accepted, {} rejected)",
            report.devices, report.ops, report.accepted, report.rejected
        );
        if health {
            eprint!("{}", service.health_report().render());
        }
        service.store().sync_all()?;
        if let Some(log) = service.access_log() {
            log.flush();
        }
        if linger {
            // Keep serving (admin plane included) after the drill so a
            // harness can scrape `/metrics` and `/slo` against the
            // drill's windowed state; kill the process to exit.
            eprintln!("drill complete; lingering (kill to exit)");
            loop {
                std::thread::park();
            }
        }
        server.shutdown();
        return Ok(());
    }

    if health {
        eprint!("{}", service.health_report().render());
    }
    // Block forever: the accept/worker threads own the work now.
    loop {
        std::thread::park();
    }
}

/// Runs the aged-fleet re-enrollment drill against an in-process
/// server: enroll, age, assess drift (the fleet gauge goes unhealthy),
/// supersede the drifted enrollments, and verify the healed fleet.
/// `--stop-after` exits after a phase leaving the store on disk;
/// `--resume true` reopens it and runs only the verify phase, so a
/// kill-and-restart check can diff the concatenated transcripts
/// against a full run's.
fn reenroll(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let store_dir = required(opts, "store")?;
    let workers = get(opts, "workers", worker_threads())?;
    if workers == 0 {
        return Err(CliError::Usage("--workers must be at least 1".to_string()));
    }
    let shards = get(opts, "shards", 8usize)?;
    if shards == 0 {
        return Err(CliError::Usage("--shards must be at least 1".to_string()));
    }
    let fsync = match opts.get("fsync").map(String::as_str) {
        None | Some("every") => FsyncPolicy::EveryRecord,
        Some("batched") => FsyncPolicy::Batched,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--fsync must be every or batched, got {other:?}"
            )))
        }
    };
    let stop_after = match opts.get("stop-after").map(String::as_str) {
        None => None,
        Some(raw) => Some(ReenrollStage::parse(raw).ok_or_else(|| {
            CliError::Usage(format!(
                "--stop-after must be enroll, assess, or reenroll, got {raw:?}"
            ))
        })?),
    };
    let defaults = ReenrollDrillSpec::default();
    let spec = ReenrollDrillSpec {
        seed: get(opts, "seed", defaults.seed)?,
        devices: get(opts, "devices", defaults.devices)?,
        units: get(opts, "units", defaults.units)?,
        cols: get(opts, "cols", defaults.cols)?,
        votes: get(opts, "votes", defaults.votes)?,
        repetition: get(opts, "repetition", defaults.repetition)?,
        years: get(opts, "years", defaults.years)?,
        client_threads: get(opts, "threads", worker_threads())?,
        stop_after,
        resume: get(opts, "resume", false)?,
    };
    if spec.votes == 0 || spec.votes.is_multiple_of(2) {
        return Err(CliError::Usage(format!(
            "--votes must be odd, got {}",
            spec.votes
        )));
    }
    if spec.repetition == 0 || spec.repetition.is_multiple_of(2) {
        return Err(CliError::Usage(format!(
            "--repetition must be odd, got {}",
            spec.repetition
        )));
    }
    if !(spec.years.is_finite() && spec.years >= 0.0) {
        return Err(CliError::Usage(format!(
            "--years must be a finite non-negative span, got {}",
            spec.years
        )));
    }
    if spec.resume && spec.stop_after.is_some() {
        return Err(CliError::Usage(
            "--resume runs only the verify phase; --stop-after does not apply".to_string(),
        ));
    }

    let open_span = telemetry::span("cli.reenroll.open");
    let store = Store::open(std::path::Path::new(store_dir), shards, fsync)?;
    // Same frozen clock as `serve --drill`: the ops plane must not
    // leak wall time into anything a harness could diff.
    let service = std::sync::Arc::new(PufService::with_options(
        store,
        ServiceOptions {
            config: ServiceConfig::default(),
            ops: OpsConfig {
                clock: std::sync::Arc::new(telemetry::ManualClock::at(0)),
                ..OpsConfig::default()
            },
            access_log: None,
        },
    ));
    drop(open_span);
    let server = ropuf::server::serve(
        std::sync::Arc::clone(&service),
        "127.0.0.1:0".parse().expect("loopback addr"),
        workers,
    )
    .map_err(|source| CliError::Io {
        path: "127.0.0.1:0".to_string(),
        source,
    })?;

    let drill_span = telemetry::span("cli.reenroll.drill");
    let report =
        ropuf::server::run_reenroll_drill(server.addr(), &spec).map_err(|source| CliError::Io {
            path: format!("reenroll drill against {}", server.addr()),
            source,
        })?;
    drop(drill_span);
    // Stdout carries only the seed-determined transcript; tallies go
    // to stderr like every other subcommand.
    print!("{}", report.transcript);
    eprintln!(
        "reenroll: {} devices, {} drifted, {} superseded, {} ops ({} accepted, {} rejected)",
        report.devices,
        report.drifted,
        report.reenrolled,
        report.ops,
        report.accepted,
        report.rejected
    );
    service.store().sync_all()?;
    server.shutdown();
    Ok(())
}
