#![warn(missing_docs)]

//! Umbrella crate re-exporting the `ropuf` workspace.
//!
//! See the [README](https://example.invalid/ropuf) for a tour; the
//! typical imports live in [`prelude`].
pub use ropuf_attack as attack;
pub use ropuf_core as core;
pub use ropuf_dataset as dataset;
pub use ropuf_metrics as metrics;
pub use ropuf_nist as nist;
pub use ropuf_num as num;
pub use ropuf_server as server;
pub use ropuf_silicon as silicon;
pub use ropuf_telemetry as telemetry;

/// The types most programs start with.
///
/// # Examples
///
/// ```
/// use ropuf::prelude::*;
/// use rand::SeedableRng;
///
/// let mut sim = SiliconSim::default_spartan();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let board = sim.grow_board(&mut rng, 70, 10);
/// let puf = ConfigurableRoPuf::tiled_interleaved(70, 7);
/// let e = puf.enroll(
///     &mut rng,
///     &board,
///     sim.technology(),
///     Environment::nominal(),
///     &EnrollOptions::default(),
/// );
/// assert_eq!(e.bit_count(), 5);
/// ```
pub mod prelude {
    pub use ropuf_attack::suite::{
        SuiteConfig as AttackSuiteConfig, SuiteReport as AttackSuiteReport,
    };
    pub use ropuf_core::crp::{respond as crp_respond, Challenge, LinearDelayAttack};
    pub use ropuf_core::error::Error;
    pub use ropuf_core::fleet::{
        split_seed, worker_threads, BoardRecord, FleetAging, FleetConfig, FleetEngine, FleetRun,
        Layout, Quarantine, QuarantineReason,
    };
    pub use ropuf_core::fuzzy::FuzzyExtractor;
    pub use ropuf_core::lifecycle::{Device, Enrolled, KeyCode, Started};
    pub use ropuf_core::monitor::{FleetHealth, FleetObservatory, MonitorConfig, SweepPlan};
    pub use ropuf_core::one_of_eight::{OneOfEightEnrollment, OneOfEightPuf, RoGroup};
    pub use ropuf_core::persist::{
        enrollment_from_bytes, enrollment_from_text, enrollment_to_bytes, enrollment_to_text,
    };
    pub use ropuf_core::puf::{
        ConfigurableRoPuf, EnrollOptions, EnrollOptionsBuilder, Enrollment, PairSpec, SelectionMode,
    };
    pub use ropuf_core::ro::RoPair;
    pub use ropuf_core::robust::{
        enroll_robust, respond_robust, FaultPlan, FaultSummary, RobustEnrollment, RobustOptions,
    };
    pub use ropuf_core::traditional::{TraditionalEnrollment, TraditionalRoPuf};
    pub use ropuf_core::{ConfigVector, ParityPolicy};
    pub use ropuf_dataset::extract::{distill_values, select_board, VirtualLayout};
    pub use ropuf_dataset::{InHouseConfig, InHouseDataset, VtConfig, VtDataset};
    pub use ropuf_metrics::hamming::HdStats;
    pub use ropuf_metrics::report::QualityReport;
    pub use ropuf_nist::suite::{run_suite, SuiteConfig};
    pub use ropuf_num::bits::BitVec;
    pub use ropuf_server::{DrillSpec, FsyncPolicy, PufService, ServiceConfig, Store};
    pub use ropuf_silicon::{
        Board, DelayProbe, Environment, FaultModel, FrequencyCounter, SiliconSim, Technology,
    };
}
