#![warn(missing_docs)]

//! Umbrella crate re-exporting the `ropuf` workspace.
//!
//! See the [README](https://example.invalid/ropuf) for a tour; the
//! typical imports live in [`prelude`].
pub use ropuf_core as core;
pub use ropuf_dataset as dataset;
pub use ropuf_metrics as metrics;
pub use ropuf_nist as nist;
pub use ropuf_num as num;
pub use ropuf_silicon as silicon;

/// The types most programs start with.
///
/// # Examples
///
/// ```
/// use ropuf::prelude::*;
/// use rand::SeedableRng;
///
/// let mut sim = SiliconSim::default_spartan();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let board = sim.grow_board(&mut rng, 70, 10);
/// let puf = ConfigurableRoPuf::tiled_interleaved(70, 7);
/// let e = puf.enroll(
///     &mut rng,
///     &board,
///     sim.technology(),
///     Environment::nominal(),
///     &EnrollOptions::default(),
/// );
/// assert_eq!(e.bit_count(), 5);
/// ```
pub mod prelude {
    pub use ropuf_core::puf::{ConfigurableRoPuf, EnrollOptions, Enrollment, SelectionMode};
    pub use ropuf_core::{ConfigVector, ParityPolicy};
    pub use ropuf_metrics::hamming::HdStats;
    pub use ropuf_num::bits::BitVec;
    pub use ropuf_silicon::{DelayProbe, Environment, FrequencyCounter, SiliconSim};
}
