//! Security-oriented integration tests: key derivation through the fuzzy
//! extractor, helper-data persistence, and the modeling-attack asymmetry
//! between reconfigurable and configurable deployments.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf::core::crp::{respond as crp_respond, Challenge, LinearDelayAttack};
use ropuf::core::fuzzy::FuzzyExtractor;
use ropuf::core::persist::{enrollment_from_text, enrollment_to_text};
use ropuf::core::puf::{ConfigurableRoPuf, EnrollOptions};
use ropuf::core::ro::RoPair;
use ropuf::core::ParityPolicy;
use ropuf::silicon::{AgingModel, DelayProbe, Environment, SiliconSim};

#[test]
fn end_to_end_key_lifecycle_with_helper_data() {
    // Enroll → derive key via fuzzy extractor → persist enrollment +
    // helper → reload → rederive the same key at a corner, years later.
    let mut sim = SiliconSim::default_spartan();
    let mut rng = StdRng::seed_from_u64(11);
    let board = sim.grow_board(&mut rng, 64 * 2 * 7, 32);
    let puf = ConfigurableRoPuf::tiled_interleaved(board.len(), 7);
    let env0 = Environment::nominal();
    let enrollment = puf.enroll(
        &mut rng,
        &board,
        sim.technology(),
        env0,
        &EnrollOptions::default(),
    );

    let fx = FuzzyExtractor::new(3);
    let probe = DelayProbe::new(0.25, 1);
    let response0 = enrollment.respond(&mut rng, &board, sim.technology(), env0, &probe);
    let (key, helper) = fx.generate(&mut rng, &response0);
    assert!(key.len() >= 16);

    // The verifier stores only text: the enrollment and the helper.
    let stored_enrollment = enrollment_to_text(&enrollment);
    let stored_helper = helper.to_binary_string();

    // Years later, at a corner, on aged silicon.
    let aged = AgingModel::default().age_board(&mut rng, &board, 5.0);
    let reloaded = enrollment_from_text(&stored_enrollment).expect("valid stored enrollment");
    let helper = ropuf::num::bits::BitVec::from_binary_str(&stored_helper).expect("valid helper");
    let corner = Environment::new(1.32, 55.0);
    let response1 = reloaded.respond_majority(&mut rng, &aged, sim.technology(), corner, &probe, 5);
    let rederived = fx
        .reproduce(&response1, &helper)
        .expect("well-formed helper");
    assert_eq!(rederived, key, "key must survive corner + aging");
}

#[test]
fn reconfigurable_crp_interface_is_modelable() {
    let mut sim = SiliconSim::default_spartan();
    let mut rng = StdRng::seed_from_u64(13);
    let n = 9;
    let board = sim.grow_board(&mut rng, 2 * n, n);
    let pair = RoPair::split_range(&board, 0..2 * n);
    let probe = DelayProbe::new(0.25, 1);
    let env = Environment::nominal();

    let crps: Vec<(Challenge, bool)> = (0..400)
        .map(|_| {
            let c = Challenge::random(&mut rng, n, ParityPolicy::Ignore);
            let r = crp_respond(&mut rng, &pair, &c, &probe, env, sim.technology());
            (c, r)
        })
        .collect();
    let (train, test) = crps.split_at(200);
    let (tc, tr): (Vec<_>, Vec<_>) = train.iter().cloned().unzip();
    let model = LinearDelayAttack::train(&tc, &tr).expect("enough CRPs");
    let (xc, xr): (Vec<_>, Vec<_>) = test.iter().cloned().unzip();
    assert!(
        model.accuracy(&xc, &xr) > 0.9,
        "the linear attack must break the CRP interface"
    );
}

#[test]
fn fixed_configuration_remains_stable_for_the_attacker_to_observe() {
    // The configurable deployment's entire observable behaviour is one
    // bit per pair, constant across reads — i.e. nothing beyond the
    // enrolled response ever leaks.
    let mut sim = SiliconSim::default_spartan();
    let mut rng = StdRng::seed_from_u64(17);
    let board = sim.grow_board(&mut rng, 140, 16);
    let puf = ConfigurableRoPuf::tiled(140, 7);
    let env = Environment::nominal();
    let e = puf.enroll(
        &mut rng,
        &board,
        sim.technology(),
        env,
        &EnrollOptions::default(),
    );
    let probe = DelayProbe::new(0.25, 1);
    let first = e.respond(&mut rng, &board, sim.technology(), env, &probe);
    for _ in 0..30 {
        assert_eq!(
            e.respond(&mut rng, &board, sim.technology(), env, &probe),
            first
        );
    }
}

#[test]
fn helper_data_alone_does_not_determine_the_key() {
    // Two devices sharing the same helper data derive different keys:
    // the key is bound to the silicon, not the public helper.
    let mut sim = SiliconSim::default_spartan();
    let mut rng = StdRng::seed_from_u64(19);
    let fx = FuzzyExtractor::new(3);
    let probe = DelayProbe::new(0.25, 1);
    let env = Environment::nominal();
    let puf = ConfigurableRoPuf::tiled_interleaved(2 * 7 * 48, 7);

    let board_a = sim.grow_board(&mut rng, 2 * 7 * 48, 32);
    let e_a = puf.enroll(
        &mut rng,
        &board_a,
        sim.technology(),
        env,
        &EnrollOptions::default(),
    );
    let resp_a = e_a.respond(&mut rng, &board_a, sim.technology(), env, &probe);
    let (key_a, helper) = fx.generate(&mut rng, &resp_a);

    let board_b = sim.grow_board(&mut rng, 2 * 7 * 48, 32);
    let e_b = puf.enroll(
        &mut rng,
        &board_b,
        sim.technology(),
        env,
        &EnrollOptions::default(),
    );
    let resp_b = e_b.respond(&mut rng, &board_b, sim.technology(), env, &probe);
    let key_b = fx.reproduce(&resp_b, &helper).expect("well-formed helper");
    assert_ne!(key_a, key_b);
    // And the disagreement is substantial (near half the bits).
    let hd = key_a.hamming_distance(&key_b).unwrap();
    assert!(
        hd > key_a.len() / 4,
        "keys too similar: {hd} of {}",
        key_a.len()
    );
}
