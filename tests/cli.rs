//! Integration tests driving the `ropuf` CLI binary end to end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ropuf(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ropuf"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn ropuf_with_threads(args: &[&str], threads: &str) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ropuf"))
        .args(args)
        .env("RAYON_NUM_THREADS", threads)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ropuf-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn usage_on_no_arguments() {
    let out = ropuf(&[]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("commands:"), "{err}");
}

#[test]
fn unknown_command_fails() {
    let out = ropuf(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_extract_nist_pipeline() {
    let fleet = tmp("fleet.csv");
    let bits = tmp("bits.txt");
    // Seed pinned to a fleet whose 48-bit streams also clear the
    // (discreteness-sensitive) uniformity column; most seeds do.
    let out = ropuf(&[
        "generate-vt",
        "--boards",
        "40",
        "--swept",
        "0",
        "--seed",
        "1",
        "--out",
        fleet.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = ropuf(&[
        "extract",
        "--dataset",
        fleet.to_str().unwrap(),
        "--stages",
        "5",
        "--mode",
        "case1",
        "--out",
        bits.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let content = std::fs::read_to_string(&bits).unwrap();
    assert_eq!(content.lines().count(), 40);
    // 512 ROs → 480 usable at n=5 → 48 bits per line.
    assert!(content.lines().all(|l| l.len() == 48));

    let out = ropuf(&["nist", "--bits", bits.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PROPORTION"), "{stdout}");
    assert!(stdout.contains("verdict: PASS"), "{stdout}");
}

#[test]
fn raw_extraction_fails_nist() {
    let fleet = tmp("fleet_raw.csv");
    let bits = tmp("bits_raw.txt");
    assert!(ropuf(&[
        "generate-vt",
        "--boards",
        "40",
        "--swept",
        "0",
        "--seed",
        "3",
        "--out",
        fleet.to_str().unwrap(),
    ])
    .status
    .success());
    assert!(ropuf(&[
        "extract",
        "--dataset",
        fleet.to_str().unwrap(),
        "--raw",
        "true",
        "--out",
        bits.to_str().unwrap(),
    ])
    .status
    .success());
    let out = ropuf(&["nist", "--bits", bits.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("verdict: FAIL"));
}

#[test]
fn enroll_then_respond_at_corner() {
    let enrollment = tmp("device.enrollment");
    let out = ropuf(&[
        "enroll",
        "--seed",
        "42",
        "--units",
        "140",
        "--stages",
        "7",
        "--out",
        enrollment.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let expected = String::from_utf8_lossy(&out.stdout).trim().to_string();
    assert_eq!(expected.len(), 10); // 140 units / (2*7)

    let out = ropuf(&[
        "respond",
        "--enrollment",
        enrollment.to_str().unwrap(),
        "--seed",
        "42",
        "--units",
        "140",
        "--voltage",
        "0.98",
        "--votes",
        "3",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let response = String::from_utf8_lossy(&out.stdout).trim().to_string();
    assert_eq!(response, expected, "corner response must match enrollment");
    assert!(String::from_utf8_lossy(&out.stderr).contains("0 flips"));
}

#[test]
fn respond_with_wrong_board_differs() {
    // A different silicon seed is a different device: the response
    // cannot match the stored enrollment (authentication would reject).
    let enrollment = tmp("device_a.enrollment");
    let out = ropuf(&[
        "enroll",
        "--seed",
        "7",
        "--units",
        "280",
        "--stages",
        "7",
        "--out",
        enrollment.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let expected = String::from_utf8_lossy(&out.stdout).trim().to_string();

    let out = ropuf(&[
        "respond",
        "--enrollment",
        enrollment.to_str().unwrap(),
        "--seed",
        "8",
        "--units",
        "280",
    ]);
    assert!(out.status.success());
    let response = String::from_utf8_lossy(&out.stdout).trim().to_string();
    let hd: usize = expected
        .chars()
        .zip(response.chars())
        .filter(|(a, b)| a != b)
        .count();
    assert!(hd >= 4, "impostor HD only {hd} of {}", expected.len());
}

#[test]
fn inhouse_generation_round_trips() {
    let path = tmp("inhouse.csv");
    let out = ropuf(&[
        "generate-inhouse",
        "--boards",
        "2",
        "--seed",
        "5",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.starts_with("board,ro,unit,ddiff_ps,bypass_ps"));
    assert!(ropuf::dataset::inhouse::InHouseDataset::from_csv(&text).is_ok());
}

#[test]
fn missing_required_flag_is_reported() {
    let out = ropuf(&["generate-vt", "--boards", "4"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out is required"));
}

#[test]
fn rth_sweep_on_generated_inhouse_data() {
    let path = tmp("inhouse_rth.csv");
    assert!(ropuf(&[
        "generate-inhouse",
        "--boards",
        "3",
        "--seed",
        "9",
        "--out",
        path.to_str().unwrap(),
    ])
    .status
    .success());
    let out = ropuf(&["rth", "--dataset", path.to_str().unwrap(), "--max-rth", "4"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 6, "{stdout}"); // header + Rth 0..=4
    assert!(lines[1].contains("32.0"), "{stdout}");
    // Configurable column stays at 32 throughout the sweep.
    for line in &lines[1..] {
        assert!(line.trim_end().ends_with("32.0"), "{line}");
    }
}

#[test]
fn fleet_stdout_is_thread_count_invariant() {
    // Seed-determined data goes to stdout only; a serial run and a
    // multi-threaded run of the same fleet must be byte-identical.
    let args = [
        "fleet", "--boards", "8", "--seed", "7", "--units", "80", "--stages", "4",
    ];
    let serial = ropuf_with_threads(&args, "1");
    assert!(
        serial.status.success(),
        "{}",
        String::from_utf8_lossy(&serial.stderr)
    );
    let parallel = ropuf_with_threads(&args, "4");
    assert!(parallel.status.success());
    assert_eq!(
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&parallel.stdout),
        "fleet output must not depend on thread count"
    );
    let stdout = String::from_utf8_lossy(&serial.stdout);
    assert!(stdout.contains("fleet: 8 boards"), "{stdout}");
    assert!(stdout.contains("uniqueness"), "{stdout}");
}

#[test]
fn rth_rejects_oversized_usable() {
    let path = tmp("inhouse_rth2.csv");
    assert!(ropuf(&[
        "generate-inhouse",
        "--boards",
        "2",
        "--seed",
        "3",
        "--out",
        path.to_str().unwrap(),
    ])
    .status
    .success());
    let out = ropuf(&["rth", "--dataset", path.to_str().unwrap(), "--usable", "99"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exceeds"));
}

#[test]
fn monitor_emits_prometheus_exposition() {
    let out = ropuf(&[
        "monitor",
        "--sweep",
        "nominal",
        "--boards",
        "8",
        "--units",
        "80",
        "--years",
        "0",
        "--format",
        "prometheus",
        "--fail-on",
        "never",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Every non-comment line is `name[{labels}] value` with a finite
    // numeric value — the text exposition contract.
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "{line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("space-separated sample");
        assert!(!series.is_empty(), "{line}");
        assert!(value.parse::<f64>().is_ok(), "unparsable value in {line:?}");
    }
    assert!(text.contains("# TYPE ropuf_uniqueness gauge"), "{text}");
    assert!(text.contains("ropuf_health_overall"), "{text}");
}

#[test]
fn monitor_json_report_is_versioned() {
    let out = ropuf(&[
        "monitor",
        "--sweep",
        "nominal",
        "--boards",
        "8",
        "--units",
        "80",
        "--years",
        "0",
        "--format",
        "json",
        "--fail-on",
        "never",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"version\": 1"), "{text}");
    assert!(text.contains("\"overall\""), "{text}");
    assert!(text.contains("\"flip_rate_nominal\""), "{text}");
}

#[test]
fn monitor_baseline_round_trip_detects_no_drift_against_itself() {
    let base = tmp("monitor_baseline.json");
    let enroll = ropuf(&[
        "monitor",
        "--sweep",
        "nominal",
        "--boards",
        "8",
        "--units",
        "80",
        "--years",
        "0",
        "--seed",
        "11",
        "--enroll-baseline",
        base.to_str().unwrap(),
    ]);
    assert!(
        enroll.status.success(),
        "{}",
        String::from_utf8_lossy(&enroll.stderr)
    );
    // Enrollment writes the baseline file and nothing to stdout.
    assert!(enroll.stdout.is_empty());
    let watch = ropuf(&[
        "monitor",
        "--sweep",
        "nominal",
        "--boards",
        "8",
        "--units",
        "80",
        "--years",
        "0",
        "--seed",
        "11",
        "--baseline",
        base.to_str().unwrap(),
        "--format",
        "json",
        "--fail-on",
        "never",
    ]);
    assert!(
        watch.status.success(),
        "{}",
        String::from_utf8_lossy(&watch.stderr)
    );
    let text = String::from_utf8_lossy(&watch.stdout);
    assert!(text.contains("\"drift\": 0.0"), "{text}");
}

#[test]
fn monitor_stdout_is_thread_count_invariant() {
    let args = [
        "monitor",
        "--sweep",
        "voltage",
        "--boards",
        "8",
        "--units",
        "80",
        "--seed",
        "5",
        "--format",
        "json",
        "--fail-on",
        "never",
    ];
    let one = ropuf_with_threads(&args, "1");
    let four = ropuf_with_threads(&args, "4");
    assert!(one.status.success() && four.status.success());
    assert_eq!(one.stdout, four.stdout);
}

#[test]
fn monitor_rejects_bad_sweep() {
    let out = ropuf(&["monitor", "--sweep", "sideways"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--sweep"));
}

#[test]
fn monitor_baseline_missing_file_is_a_typed_error() {
    let missing = tmp("no-such-dir").join("baseline.json");
    let out = ropuf(&[
        "monitor",
        "--sweep",
        "nominal",
        "--boards",
        "4",
        "--units",
        "60",
        "--years",
        "0",
        "--baseline",
        missing.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "unreadable baseline must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error: "), "typed error prefix: {err}");
    assert!(
        err.contains("baseline.json"),
        "names the offending path: {err}"
    );
}

#[test]
fn monitor_baseline_malformed_file_is_a_typed_error() {
    let garbled = tmp("garbled_baseline.json");
    std::fs::write(&garbled, "hello, not json at all").unwrap();
    let out = ropuf(&[
        "monitor",
        "--sweep",
        "nominal",
        "--boards",
        "4",
        "--units",
        "60",
        "--years",
        "0",
        "--baseline",
        garbled.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "malformed baseline must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("baseline"),
        "explains what was malformed: {err}"
    );
}

#[test]
fn trace_out_to_unwritable_path_is_a_typed_error() {
    let missing = tmp("no-such-dir").join("trace.jsonl");
    let out = ropuf(&[
        "fleet",
        "--boards",
        "2",
        "--units",
        "60",
        "--stages",
        "3",
        "--trace-out",
        missing.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "unwritable trace sink must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error: "), "typed error prefix: {err}");
    assert!(
        err.contains("trace.jsonl"),
        "names the offending path: {err}"
    );
}

#[test]
fn fleet_rejects_malformed_fault_scale() {
    for bad in ["banana", "-1", "inf"] {
        let out = ropuf(&[
            "fleet", "--boards", "2", "--units", "60", "--stages", "3", "--faults", bad,
        ]);
        assert!(!out.status.success(), "--faults {bad} must fail");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--faults"),
            "points at the flag for {bad}"
        );
    }
}

#[test]
fn fleet_with_zero_fault_scale_is_byte_identical_to_plain() {
    // `--faults 0` must not perturb the measurement RNG stream: the
    // robust read path falls back to plain reads and the report gains
    // no extra lines.
    let plain = ropuf(&[
        "fleet", "--boards", "6", "--seed", "7", "--units", "60", "--stages", "3",
    ]);
    let zero = ropuf(&[
        "fleet", "--boards", "6", "--seed", "7", "--units", "60", "--stages", "3", "--faults", "0",
    ]);
    assert!(plain.status.success() && zero.status.success());
    assert_eq!(
        plain.stdout, zero.stdout,
        "zero-rate fault layer must be byte-identical to no fault layer"
    );
}

#[test]
fn fleet_chaos_drill_quarantines_deterministically() {
    // Seed 7 at scale 8 provably quarantines at least one board (the
    // panic roll depends only on master seed, board index, and rate).
    let args = [
        "fleet", "--boards", "24", "--seed", "7", "--units", "60", "--stages", "3", "--cols", "6",
        "--faults", "8",
    ];
    let first = ropuf_with_threads(&args, "4");
    assert!(
        first.status.success(),
        "chaos drill is a success mode: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    let stdout = String::from_utf8_lossy(&first.stdout);
    assert!(stdout.contains("QUARANTINED"), "{stdout}");
    assert!(stdout.contains("faults:"), "{stdout}");
    let again = ropuf_with_threads(&args, "4");
    assert_eq!(first.stdout, again.stdout, "chaos drill is deterministic");
    let serial = ropuf_with_threads(&args, "1");
    assert_eq!(
        first.stdout, serial.stdout,
        "chaos drill is thread-count invariant"
    );
}

#[test]
fn serve_flag_parse_failures_are_typed_nonzero_exits() {
    // Every malformed flag must exit nonzero with an error naming the
    // flag — the typed CliError::Usage path, not a panic or silence.
    let store = tmp("serve-flags-store");
    let store = store.to_str().unwrap();
    let cases: &[(&[&str], &str)] = &[
        (&["serve"], "--store"),
        (
            &["serve", "--store", store, "--addr", "not-an-addr"],
            "--addr",
        ),
        (&["serve", "--store", store, "--workers", "0"], "--workers"),
        (
            &["serve", "--store", store, "--workers", "nope"],
            "--workers",
        ),
        (&["serve", "--store", store, "--shards", "0"], "--shards"),
        (
            &["serve", "--store", store, "--fsync", "sometimes"],
            "--fsync",
        ),
        (&["serve", "--store", store, "--drill", "maybe"], "--drill"),
        (&["serve", "--store", store, "--votes", "2"], "--votes"),
        (
            &["serve", "--store", store, "--repetition", "4"],
            "--repetition",
        ),
        (&["serve", "--store", store, "--faults", "-1"], "--faults"),
        (
            &["serve", "--store", store, "--devices", "many"],
            "--devices",
        ),
        (
            &["serve", "--store", store, "--admin", "not-an-addr"],
            "--admin",
        ),
        (&["serve", "--store", store, "--sample", "0"], "--sample"),
        (
            &["serve", "--store", store, "--sample", "every-other"],
            "--sample",
        ),
        // --sample without --access-log is a contradiction, not a no-op.
        (&["serve", "--store", store, "--sample", "2"], "--sample"),
        // --access-log pointing into a missing directory is a typed
        // I/O error, not a panic.
        (
            &[
                "serve",
                "--store",
                store,
                "--access-log",
                "/nonexistent-ropuf-dir/access.jsonl",
            ],
            "/nonexistent-ropuf-dir/access.jsonl",
        ),
        // --linger only makes sense for a drill.
        (&["serve", "--store", store, "--linger", "true"], "--linger"),
    ];
    for (args, flag) in cases {
        let out = ropuf(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "{args:?}: {err}");
        assert!(err.contains(flag), "{args:?} should name {flag}: {err}");
    }
}

#[test]
fn fleet_flag_parse_failures_are_typed_nonzero_exits() {
    let cases: &[(&[&str], &str)] = &[
        (&["fleet", "--boards", "two"], "--boards"),
        (&["fleet", "--seed", "0x1"], "--seed"),
        (&["fleet", "--threads", "-3"], "--threads"),
        (&["fleet", "--threshold", "wide"], "--threshold"),
    ];
    for (args, flag) in cases {
        let out = ropuf(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "{args:?}: {err}");
        assert!(err.contains(flag), "{args:?} should name {flag}: {err}");
    }
}

#[test]
fn monitor_flag_parse_failures_are_typed_nonzero_exits() {
    let cases: &[(&[&str], &str)] = &[
        (&["monitor", "--boards", "a-few"], "--boards"),
        (&["monitor", "--years", "forever"], "--years"),
        (&["monitor", "--format", "yaml"], "--format"),
        (&["monitor", "--fail-on", "meh"], "--fail-on"),
    ];
    for (args, flag) in cases {
        let out = ropuf(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "{args:?}: {err}");
        assert!(err.contains(flag), "{args:?} should name {flag}: {err}");
    }
}

#[test]
fn serve_drill_stdout_is_deterministic_across_runs_and_workers() {
    let run = |store: &str, workers: &str| {
        let out = ropuf(&[
            "serve",
            "--store",
            store,
            "--fsync",
            "batched",
            "--drill",
            "true",
            "--devices",
            "4",
            "--ops",
            "7",
            "--workers",
            workers,
            "--seed",
            "99",
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let a_dir = tmp("serve-det-a");
    let b_dir = tmp("serve-det-b");
    let c_dir = tmp("serve-det-c");
    for d in [&a_dir, &b_dir, &c_dir] {
        std::fs::remove_dir_all(d).ok();
    }
    let a = run(a_dir.to_str().unwrap(), "1");
    let b = run(b_dir.to_str().unwrap(), "1");
    let c = run(c_dir.to_str().unwrap(), "4");
    assert_eq!(a, b, "same spec, same transcript");
    assert_eq!(a, c, "worker count cannot perturb the transcript");
    assert!(!a.is_empty());
    for d in [&a_dir, &b_dir, &c_dir] {
        std::fs::remove_dir_all(d).ok();
    }
}

#[test]
fn serve_drill_stdout_is_identical_with_admin_plane_enabled() {
    // The ops plane (admin listener, access log, windowed metrics)
    // must be pure observation: enabling all of it cannot perturb a
    // single transcript byte.
    let plain_dir = tmp("serve-admin-det-a");
    let wired_dir = tmp("serve-admin-det-b");
    for d in [&plain_dir, &wired_dir] {
        std::fs::remove_dir_all(d).ok();
    }
    let log = tmp("serve-admin-det.jsonl");
    std::fs::remove_file(&log).ok();
    let base = |store: &str| {
        vec![
            "serve".to_string(),
            "--store".to_string(),
            store.to_string(),
            "--fsync".to_string(),
            "batched".to_string(),
            "--drill".to_string(),
            "true".to_string(),
            "--devices".to_string(),
            "4".to_string(),
            "--ops".to_string(),
            "7".to_string(),
            "--seed".to_string(),
            "99".to_string(),
        ]
    };
    let plain = base(plain_dir.to_str().unwrap());
    let mut wired = base(wired_dir.to_str().unwrap());
    wired.extend(
        [
            "--admin",
            "127.0.0.1:0",
            "--access-log",
            log.to_str().unwrap(),
            "--sample",
            "2",
        ]
        .map(String::from),
    );
    let run = |args: &[String]| {
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        let out = ropuf(&refs);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };
    let a = run(&plain);
    let b = run(&wired);
    assert_eq!(a.stdout, b.stdout, "admin plane perturbed the transcript");
    assert!(
        String::from_utf8_lossy(&b.stderr).contains("admin on http://"),
        "admin bind line missing from stderr"
    );
    let logged = std::fs::read_to_string(&log).expect("access log written");
    assert!(
        logged.lines().count() > 0,
        "sampled access log must carry records"
    );
    assert!(
        logged
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')),
        "access log must be JSONL: {logged}"
    );
    for d in [&plain_dir, &wired_dir] {
        std::fs::remove_dir_all(d).ok();
    }
    std::fs::remove_file(&log).ok();
}

#[test]
fn serve_drill_store_survives_reopen() {
    // Drill once (fsync every record), then reopen the store with a
    // second drill run at different device ids... simpler: re-running
    // the same drill must now hit `already_enrolled` rejects, proving
    // the first run's records were durably replayed on reopen.
    let dir = tmp("serve-reopen");
    std::fs::remove_dir_all(&dir).ok();
    let store = dir.to_str().unwrap();
    let args = [
        "serve",
        "--store",
        store,
        "--drill",
        "true",
        "--devices",
        "2",
        "--ops",
        "3",
        "--seed",
        "7",
    ];
    let first = ropuf(&args);
    assert!(first.status.success());
    assert!(!String::from_utf8_lossy(&first.stdout).contains("already_enrolled"));
    let second = ropuf(&args);
    assert!(second.status.success());
    assert!(
        String::from_utf8_lossy(&second.stdout).contains("reject already_enrolled"),
        "reopened store remembered the first run:\n{}",
        String::from_utf8_lossy(&second.stdout)
    );
    std::fs::remove_dir_all(&dir).ok();
}
