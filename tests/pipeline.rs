//! End-to-end pipeline tests over simulated silicon: fabricate →
//! calibrate → select → respond, across schemes and environments.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ropuf::core::one_of_eight::OneOfEightPuf;
use ropuf::core::puf::{ConfigurableRoPuf, EnrollOptions, SelectionMode};
use ropuf::core::traditional::TraditionalRoPuf;
use ropuf::core::ParityPolicy;
use ropuf::metrics::reliability::FlipSummary;
use ropuf::num::bits::BitVec;
use ropuf::silicon::{Board, DelayProbe, Environment, SiliconSim, Technology};

const STAGES: usize = 7;
const UNITS: usize = 8 * STAGES * 12; // 12 groups -> 48 pairs / 12 one-of-8 bits

fn grow(seed: u64) -> (Board, Technology) {
    let mut sim = SiliconSim::default_spartan();
    let mut rng = StdRng::seed_from_u64(seed);
    let board = sim.grow_board(&mut rng, UNITS, 32);
    (board, *sim.technology())
}

fn corners() -> Vec<Environment> {
    Environment::voltage_sweep(25.0)
        .into_iter()
        .chain(Environment::temperature_sweep(1.20))
        .filter(|e| *e != Environment::nominal())
        .collect()
}

/// Flip rate of a scheme across every corner, with fresh measurement
/// noise per read.
fn corner_flip_rate(
    baseline: &BitVec,
    mut respond: impl FnMut(&mut StdRng, Environment) -> BitVec,
    rng: &mut StdRng,
) -> f64 {
    let samples: Vec<BitVec> = corners().into_iter().map(|env| respond(rng, env)).collect();
    FlipSummary::against_baseline(baseline, &samples).flip_rate()
}

#[test]
fn reliability_ordering_one_of_eight_configurable_traditional() {
    // The paper's Figure 4 ordering: traditional is the least reliable,
    // the configurable PUF is much better, 1-out-of-8 is flip-free.
    let mut trad_total = 0.0;
    let mut conf_total = 0.0;
    let mut one8_total = 0.0;
    for seed in 0..3 {
        let (board, tech) = grow(seed);
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let probe = DelayProbe::new(0.25, 1);
        let env0 = Environment::nominal();

        let trad = TraditionalRoPuf::tiled(UNITS, STAGES)
            .enroll(&mut rng, &board, &tech, env0, &probe, 0.0);
        trad_total += corner_flip_rate(
            &trad.expected_bits(),
            |rng, env| trad.respond(rng, &board, &tech, env, &probe),
            &mut rng,
        );

        let conf = ConfigurableRoPuf::tiled(UNITS, STAGES).enroll(
            &mut rng,
            &board,
            &tech,
            env0,
            &EnrollOptions::default(),
        );
        conf_total += corner_flip_rate(
            &conf.expected_bits(),
            |rng, env| conf.respond(rng, &board, &tech, env, &probe),
            &mut rng,
        );

        let one8 =
            OneOfEightPuf::tiled(UNITS, STAGES).enroll(&mut rng, &board, &tech, env0, &probe);
        one8_total += corner_flip_rate(
            &one8.expected_bits(),
            |rng, env| one8.respond(rng, &board, &tech, env, &probe),
            &mut rng,
        );
    }
    assert!(
        one8_total <= conf_total + 1e-12,
        "1-of-8 {one8_total} !<= configurable {conf_total}"
    );
    assert!(
        conf_total < trad_total,
        "configurable {conf_total} !< traditional {trad_total}"
    );
    assert_eq!(one8_total, 0.0, "1-out-of-8 must be flip-free");
}

#[test]
fn enrollment_is_deterministic_per_seed() {
    let (board, tech) = grow(9);
    let puf = ConfigurableRoPuf::tiled(UNITS, STAGES);
    let enroll = |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        puf.enroll(
            &mut rng,
            &board,
            &tech,
            Environment::nominal(),
            &EnrollOptions::default(),
        )
    };
    assert_eq!(enroll(5), enroll(5));
}

#[test]
fn case2_flips_no_more_than_case1() {
    let mut case1_flips = 0.0;
    let mut case2_flips = 0.0;
    for seed in 0..4 {
        let (board, tech) = grow(100 + seed);
        let probe = DelayProbe::new(0.25, 1);
        for (mode, acc) in [
            (SelectionMode::Case1, &mut case1_flips),
            (SelectionMode::Case2, &mut case2_flips),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let e = ConfigurableRoPuf::tiled(UNITS, 5).enroll(
                &mut rng,
                &board,
                &tech,
                Environment::nominal(),
                &EnrollOptions {
                    mode,
                    parity: ParityPolicy::Ignore,
                    ..EnrollOptions::default()
                },
            );
            *acc += corner_flip_rate(
                &e.expected_bits(),
                |rng, env| e.respond(rng, &board, &tech, env, &probe),
                &mut rng,
            );
        }
    }
    // Case-2's wider margins cannot make reliability worse in aggregate.
    assert!(
        case2_flips <= case1_flips + 0.02,
        "case2 {case2_flips} vs case1 {case1_flips}"
    );
}

#[test]
fn threshold_improves_reliability_and_costs_bits() {
    // §IV.E's tradeoff on live silicon: raising Rth cannot increase the
    // traditional scheme's flip rate, and strictly reduces bit count.
    let (board, tech) = grow(77);
    let mut rng = StdRng::seed_from_u64(7);
    let probe = DelayProbe::new(0.25, 1);
    let env0 = Environment::nominal();
    let puf = TraditionalRoPuf::tiled(UNITS, 5);

    let loose = puf.enroll(&mut rng, &board, &tech, env0, &probe, 0.0);
    let margins = loose.margins_ps();
    let mut sorted = margins.clone();
    sorted.sort_by(f64::total_cmp);
    let rth = sorted[sorted.len() / 2];
    let strict = puf.enroll(&mut rng, &board, &tech, env0, &probe, rth);

    assert!(strict.bit_count() < loose.bit_count());
    let loose_rate = corner_flip_rate(
        &loose.expected_bits(),
        |rng, env| loose.respond(rng, &board, &tech, env, &probe),
        &mut rng,
    );
    let strict_rate = corner_flip_rate(
        &strict.expected_bits(),
        |rng, env| strict.respond(rng, &board, &tech, env, &probe),
        &mut rng,
    );
    assert!(
        strict_rate <= loose_rate + 1e-12,
        "strict {strict_rate} !<= loose {loose_rate}"
    );
}

#[test]
fn configured_rings_oscillate_under_force_odd() {
    let (board, tech) = grow(55);
    let mut rng = StdRng::seed_from_u64(3);
    let enrollment = ConfigurableRoPuf::tiled(UNITS, 5).enroll(
        &mut rng,
        &board,
        &tech,
        Environment::nominal(),
        &EnrollOptions::default(), // ForceOdd
    );
    let counter = ropuf::silicon::FrequencyCounter::ideal();
    for pair in enrollment.pairs().iter().flatten() {
        let bound = pair.spec().bind(&board);
        // Both rings must free-run: frequency measurement succeeds.
        bound
            .top()
            .frequency_mhz(
                &mut rng,
                &counter,
                pair.top_config(),
                Environment::nominal(),
                &tech,
            )
            .expect("top ring oscillates");
        bound
            .bottom()
            .frequency_mhz(
                &mut rng,
                &counter,
                pair.bottom_config(),
                Environment::nominal(),
                &tech,
            )
            .expect("bottom ring oscillates");
    }
}

#[test]
fn repeated_nominal_reads_are_stable() {
    let (board, tech) = grow(21);
    let mut rng = StdRng::seed_from_u64(13);
    let enrollment = ConfigurableRoPuf::tiled(UNITS, STAGES).enroll(
        &mut rng,
        &board,
        &tech,
        Environment::nominal(),
        &EnrollOptions::default(),
    );
    let probe = DelayProbe::new(0.25, 1);
    let baseline = enrollment.expected_bits();
    let reads: Vec<BitVec> = (0..50)
        .map(|_| enrollment.respond(&mut rng, &board, &tech, Environment::nominal(), &probe))
        .collect();
    let summary = FlipSummary::against_baseline(&baseline, &reads);
    assert_eq!(
        summary.flipped_position_count(),
        0,
        "nominal re-reads must be noise-immune thanks to margins"
    );
}
