//! Dataset-driven integration tests: the paper's public-dataset workflow
//! from synthetic fleet to metrics and randomness verdicts.

use ropuf::core::distill::Distiller;
use ropuf::core::puf::SelectionMode;
use ropuf::core::ParityPolicy;
use ropuf::dataset::extract::{
    apply_board, distill_values, one_of_eight_apply, one_of_eight_select, select_board,
    traditional_board, traditional_pairs, VirtualLayout,
};
use ropuf::dataset::vt::{Condition, VtConfig, VtDataset};
use ropuf::metrics::entropy::min_entropy_per_bit;
use ropuf::metrics::hamming::HdStats;
use ropuf::metrics::reliability::flip_rate_against_baseline;
use ropuf::nist::basic::frequency;
use ropuf::num::bits::BitVec;

const USABLE: usize = 480;

fn small_fleet() -> VtDataset {
    VtDataset::generate(&VtConfig {
        boards: 40,
        swept_boards: 2,
        ..VtConfig::default()
    })
}

fn board_bits(data: &VtDataset, stages: usize, mode: SelectionMode, distill: bool) -> Vec<BitVec> {
    let layout = VirtualLayout::new(USABLE, stages);
    data.boards()
        .iter()
        .map(|b| {
            let freqs = &b.nominal()[..USABLE];
            let values = if distill {
                distill_values(freqs, &b.positions()[..USABLE]).expect("grid fit")
            } else {
                freqs.to_vec()
            };
            select_board(&values, layout, mode, ParityPolicy::Ignore)
                .iter()
                .map(|p| p.bit)
                .collect()
        })
        .collect()
}

#[test]
fn distilled_bits_are_unique_and_balanced() {
    let data = small_fleet();
    for mode in [SelectionMode::Case1, SelectionMode::Case2] {
        let bits = board_bits(&data, 5, mode, true);
        let stats = HdStats::of_fleet(&bits).expect("40 boards");
        assert!(
            (stats.normalized_mean() - 0.5).abs() < 0.05,
            "{mode:?} uniqueness {}",
            stats.normalized_mean()
        );
        // Concatenate everything and check gross bit balance.
        let mut all = BitVec::new();
        for b in &bits {
            all.extend_bits(b);
        }
        let ones = all.ones_fraction().unwrap();
        assert!((ones - 0.5).abs() < 0.08, "{mode:?} ones fraction {ones}");
        let p = frequency(&all).unwrap();
        assert!(p > 0.001, "{mode:?} frequency test p {p}");
    }
}

#[test]
fn raw_bits_show_systematic_structure() {
    // Without the distiller, the HD spread across boards is inflated by
    // the shared pair geometry picking up each board's gradient — the
    // effect that makes the paper's raw bit-streams fail NIST.
    let data = small_fleet();
    let raw = HdStats::of_fleet(&board_bits(&data, 5, SelectionMode::Case1, false)).unwrap();
    let distilled = HdStats::of_fleet(&board_bits(&data, 5, SelectionMode::Case1, true)).unwrap();
    assert!(
        raw.std_dev_bits > distilled.std_dev_bits,
        "raw σ {} !> distilled σ {}",
        raw.std_dev_bits,
        distilled.std_dev_bits
    );
    // Distilled spread is near binomial: sqrt(48)/2 ≈ 3.46.
    assert!(distilled.std_dev_bits < 5.0, "σ {}", distilled.std_dev_bits);
}

#[test]
fn distilled_bits_carry_high_min_entropy() {
    // Note the bit-aliasing estimator only sees *positional* bias; the
    // raw bits' defect is cross-position correlation within a board
    // (covered by `raw_bits_show_systematic_structure`), so no raw-vs-
    // distilled ordering is asserted here — just that the distilled
    // output's per-position min-entropy is near the 40-sample estimator
    // ceiling (~0.89 for ideal bits).
    let data = small_fleet();
    let distilled = board_bits(&data, 5, SelectionMode::Case1, true);
    let h = min_entropy_per_bit(&distilled).unwrap();
    assert!(h > 0.7, "distilled min-entropy {h}");
}

#[test]
fn distiller_shrinks_frequency_spread_on_every_board() {
    let data = small_fleet();
    let d = Distiller::default();
    for b in data.boards().iter().take(10) {
        let freqs = b.nominal();
        let res = d.residuals(freqs, &b.positions()).unwrap();
        let spread = |v: &[f64]| ropuf::num::stats::std_dev(v).unwrap();
        assert!(spread(&res) < spread(freqs));
    }
}

#[test]
fn voltage_corner_reliability_ordering_on_dataset() {
    // Configure at nominal, re-extract at the voltage corners, count
    // flips: traditional >= configurable; 1-out-of-8 flip-free.
    let data = small_fleet();
    let layout = VirtualLayout::new(USABLE, 5);
    let mut trad = 0.0;
    let mut conf = 0.0;
    let mut one8 = 0.0;
    for b in data.swept_boards() {
        let nominal = &b.nominal()[..USABLE];
        let conf_pairs = select_board(nominal, layout, SelectionMode::Case2, ParityPolicy::Ignore);
        let conf_base: BitVec = conf_pairs.iter().map(|p| p.bit).collect();
        let trad_pairs = traditional_pairs(nominal, layout);
        let (trad_base, _) = traditional_board(nominal, layout);
        let picks = one_of_eight_select(nominal, layout);
        let one8_base: BitVec = picks.iter().map(|p| p.bit).collect();

        for v in [0.98, 1.08, 1.32, 1.44] {
            let freqs = b
                .at(Condition {
                    voltage_v: v,
                    temperature_c: 25.0,
                })
                .expect("swept board");
            let freqs = &freqs[..USABLE];
            trad +=
                flip_rate_against_baseline(&trad_base, &[apply_board(&trad_pairs, freqs, layout)]);
            conf +=
                flip_rate_against_baseline(&conf_base, &[apply_board(&conf_pairs, freqs, layout)]);
            one8 += flip_rate_against_baseline(
                &one8_base,
                &[one_of_eight_apply(&picks, freqs, layout)],
            );
        }
    }
    assert!(conf <= trad, "configurable {conf} !<= traditional {trad}");
    assert_eq!(one8, 0.0, "1-out-of-8 flipped");
    assert!(
        trad > 0.0,
        "traditional should show some flips across corners"
    );
}

#[test]
fn csv_round_trip_preserves_experiment_results() {
    let data = small_fleet();
    let back = VtDataset::from_csv(&data.to_csv(), 16, 2).expect("round trip");
    let layout = VirtualLayout::new(USABLE, 5);
    let bits_of = |d: &VtDataset| -> Vec<BitVec> {
        d.boards()
            .iter()
            .map(|b| {
                select_board(
                    &b.nominal()[..USABLE],
                    layout,
                    SelectionMode::Case1,
                    ParityPolicy::Ignore,
                )
                .iter()
                .map(|p| p.bit)
                .collect()
            })
            .collect()
    };
    assert_eq!(bits_of(&data), bits_of(&back));
}

#[test]
fn selected_counts_concentrate_near_half() {
    // §III.D's conjecture: the optimal configuration selects about n/2
    // inverters once systematic variation is filtered out.
    let data = small_fleet();
    let n = 15;
    let layout = VirtualLayout::new(USABLE, n);
    let mut counts = Vec::new();
    for b in data.boards() {
        let values = distill_values(&b.nominal()[..USABLE], &b.positions()[..USABLE]).unwrap();
        for p in select_board(&values, layout, SelectionMode::Case1, ParityPolicy::Ignore) {
            counts.push(p.top.selected_count() as f64);
        }
    }
    let mean = counts.iter().sum::<f64>() / counts.len() as f64;
    assert!(
        (mean - n as f64 / 2.0).abs() < 1.5,
        "mean selected count {mean} for n={n}"
    );
}
