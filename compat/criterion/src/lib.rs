//! Offline stand-in for the crates.io `criterion` API surface this
//! workspace's benches use. It runs each benchmark long enough for a
//! stable mean and prints one line per benchmark — no statistics
//! machinery, no HTML reports, no external dependencies.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// Benchmark identifier: a name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Throughput annotation (recorded, displayed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count to [`TARGET`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and per-iteration estimate.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { mean_ns: 0.0 };
    f(&mut bencher);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if bencher.mean_ns > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / (bencher.mean_ns / 1e9))
        }
        Some(Throughput::Bytes(n)) if bencher.mean_ns > 0.0 => {
            format!("  ({:.0} B/s)", n as f64 / (bencher.mean_ns / 1e9))
        }
        _ => String::new(),
    };
    println!("bench: {label:<48} {}{rate}", human(bencher.mean_ns));
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; sampling is time-targeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.name), self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.name),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into().name, None, f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench-harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_mean() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4)).bench_with_input(
            BenchmarkId::from_parameter(4),
            &4u64,
            |b, &n| b.iter(|| (0..n).sum::<u64>()),
        );
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(1)));
    }
}
