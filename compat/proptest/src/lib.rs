//! Offline stand-in for the crates.io `proptest` API surface this
//! workspace uses: the [`proptest!`] macro, range/`any`/collection/
//! sample strategies, and the `prop_assert*` family.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from
//! the test name), so failures reproduce exactly. Shrinking is not
//! implemented — a failing case reports its inputs via `Debug` instead.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of cases each `proptest!` test runs (override with the
/// `PROPTEST_CASES` environment variable).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Test-runner plumbing used by the macros.
pub mod test_runner {
    /// Deterministic case generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the generator from a test's name.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(h)
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, bound)`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn next_index(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "empty sampling bound");
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assumption violated; the case is skipped, not failed.
        Reject(String),
        /// Assertion failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }
}

use test_runner::TestRng;

/// A generator of values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Uniform strategy over all values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.next_unit_f64()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specification for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a
    /// [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element` with sizes in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.next_index(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies over explicit value sets.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// Uniformly selects one of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn select<T: Clone + std::fmt::Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select(items)
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.next_index(self.0.len())].clone()
        }
    }
}

/// The imports property tests start with.
pub mod prelude {
    pub use super::test_runner::TestCaseError;
    pub use super::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn` runs [`cases`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])+
        fn $name() {
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..$crate::cases() {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("case {case} failed: {msg}\n  inputs: {inputs}");
                    }
                }
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<f64>> {
        crate::collection::vec(0.0f64..1.0, 3..=5)
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(n in 5usize..10, x in -2.0f64..2.0) {
            prop_assert!((5..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in small_vec()) {
            prop_assert!((3..=5).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn select_only_yields_members(k in crate::sample::select(vec![1usize, 3, 5, 7])) {
            prop_assert!([1, 3, 5, 7].contains(&k));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = crate::test_runner::TestRng::for_test("exact");
        let s = crate::collection::vec(any::<bool>(), 25);
        assert_eq!(s.generate(&mut rng).len(), 25);
    }
}
