//! Offline stand-in for the crates.io `rand` 0.8 API surface this
//! workspace uses: [`Rng`], [`RngCore`], [`SeedableRng`], and
//! [`rngs::StdRng`].
//!
//! The container this repo builds in has no registry access, so the
//! workspace vendors the small slice of `rand` it needs. Semantics
//! match upstream (uniform ranges are half-open, `gen::<f64>()` is in
//! `[0, 1)`, `seed_from_u64` expands the seed with SplitMix64) with one
//! deliberate divergence: `StdRng` is xoshiro256++ rather than ChaCha12,
//! so the generated *stream* differs from crates.io `rand`. Everything
//! in this workspace treats seeds as opaque reproducibility handles, so
//! only determinism — not the exact stream — matters.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64 —
    /// the same convention as upstream `rand`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele, Lea & Flood 2014), upstream's expander.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Standard and uniform distributions.
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over all values
    /// for integers and `bool`, uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty => $via:ident),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )*};
    }
    standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                  i8 => next_u32, i16 => next_u32, i32 => next_u32,
                  u64 => next_u64, i64 => next_u64, usize => next_u64,
                  isize => next_u64, u128 => next_u64, i128 => next_u64);

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform bits into [0, 1), upstream's convention.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Uniform range sampling.
    pub mod uniform {
        use super::super::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Types samplable uniformly from a range.
        pub trait SampleUniform: Sized {
            /// Uniform sample from `[low, high)`.
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
            /// Uniform sample from `[low, high]`.
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        }

        macro_rules! uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                        assert!(low < high, "gen_range: empty range");
                        let span = (high as i128 - low as i128) as u128;
                        // Wide-multiply rejection-free mapping is overkill
                        // here; 128-bit modulo bias over u64 draws is
                        // < 2^-64 for every span this workspace uses.
                        let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                        (low as i128 + draw as i128) as $t
                    }
                    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                        assert!(low <= high, "gen_range: empty range");
                        if low == <$t>::MIN && high == <$t>::MAX {
                            return rng.next_u64() as $t;
                        }
                        Self::sample_half_open(rng, low, high.wrapping_add(1))
                    }
                }
            )*};
        }
        uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                        assert!(low < high, "gen_range: empty range");
                        let unit: $t = super::Distribution::sample(&super::Standard, rng);
                        low + unit * (high - low)
                    }
                    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                        assert!(low <= high, "gen_range: empty range");
                        let unit: $t = super::Distribution::sample(&super::Standard, rng);
                        low + unit * (high - low)
                    }
                }
            )*};
        }
        uniform_float!(f32, f64);

        /// Range forms accepted by [`Rng::gen_range`](super::super::Rng::gen_range).
        pub trait SampleRange<T> {
            /// Draws one sample from the range.
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                T::sample_half_open(rng, self.start, self.end)
            }
        }

        impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
                let (low, high) = self.into_inner();
                T::sample_inclusive(rng, low, high)
            }
        }
    }
}

/// Named generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna 2019).
    ///
    /// Upstream `rand` 0.8 uses ChaCha12 here; this stand-in trades
    /// stream compatibility for a dependency-free implementation. All
    /// statistical properties the workspace's tests rely on hold.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_u64_words(words: [u64; 4]) -> Self {
            // xoshiro must not start from the all-zero state.
            if words == [0; 4] {
                Self {
                    s: [
                        0x9E37_79B9_7F4A_7C15,
                        0xBF58_476D_1CE4_E5B9,
                        0x94D0_49BB_1331_11EB,
                        0x2545_F491_4F6C_DD1D,
                    ],
                }
            } else {
                Self { s: words }
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut words = [0u64; 4];
            for (w, chunk) in words.iter_mut().zip(seed.chunks_exact(8)) {
                *w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            Self::from_u64_words(words)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for call sites that ask for a small fast generator.
    pub type SmallRng = StdRng;
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let z = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let ones = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((ones as i64 - 50_000).abs() < 1500, "ones {ones}");
    }

    #[test]
    fn works_through_unsized_trait_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(11);
        let _ = draw(&mut rng);
    }
}
